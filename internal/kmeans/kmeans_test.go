package kmeans

import (
	"math"
	"testing"
	"testing/quick"

	"streamkm/internal/dataset"
	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

// twoBlobs builds a weighted set with two tight, well-separated groups.
func twoBlobs(t *testing.T, perBlob int) *dataset.WeightedSet {
	t.Helper()
	r := rng.New(1)
	s := dataset.MustNewWeightedSet(2)
	for i := 0; i < perBlob; i++ {
		a := vector.Of(-10+r.NormFloat64()*0.1, r.NormFloat64()*0.1)
		b := vector.Of(10+r.NormFloat64()*0.1, r.NormFloat64()*0.1)
		if err := s.Add(dataset.WeightedPoint{Vec: a, Weight: 1}); err != nil {
			t.Fatal(err)
		}
		if err := s.Add(dataset.WeightedPoint{Vec: b, Weight: 1}); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestRunValidation(t *testing.T) {
	s := twoBlobs(t, 5)
	if _, err := Run(s, Config{K: 0}, rng.New(1)); err == nil {
		t.Fatal("K=0 should error")
	}
	if _, err := Run(s, Config{K: 2, Epsilon: -1}, rng.New(1)); err == nil {
		t.Fatal("negative epsilon should error")
	}
	if _, err := Run(s, Config{K: 2, MaxIterations: -1}, rng.New(1)); err == nil {
		t.Fatal("negative max iterations should error")
	}
	if _, err := Run(dataset.MustNewWeightedSet(2), Config{K: 2}, rng.New(1)); err == nil {
		t.Fatal("empty input should error")
	}
	if _, err := Run(s, Config{K: s.Len() + 1}, rng.New(1)); err == nil {
		t.Fatal("K > N should error")
	}
}

func TestRunSeparatesBlobs(t *testing.T) {
	s := twoBlobs(t, 50)
	res, err := Run(s, Config{K: 2}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("two-blob problem should converge")
	}
	// centroids near (-10,0) and (10,0) in some order
	var left, right bool
	for _, c := range res.Centroids {
		if math.Abs(c[0]+10) < 1 {
			left = true
		}
		if math.Abs(c[0]-10) < 1 {
			right = true
		}
	}
	if !left || !right {
		t.Fatalf("centroids did not find both blobs: %v", res.Centroids)
	}
	if res.MSE > 0.1 {
		t.Fatalf("MSE = %g, want near within-blob variance", res.MSE)
	}
}

func TestResultConsistency(t *testing.T) {
	s := twoBlobs(t, 20)
	res, err := Run(s, Config{K: 2}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != s.Len() {
		t.Fatalf("assignments len %d != %d points", len(res.Assignments), s.Len())
	}
	// counts must agree with assignments, weights with point weights
	counts := make([]int, len(res.Centroids))
	weights := make([]float64, len(res.Centroids))
	var sse float64
	for i, a := range res.Assignments {
		if a < 0 || a >= len(res.Centroids) {
			t.Fatalf("assignment %d out of range", a)
		}
		counts[a]++
		weights[a] += s.At(i).Weight
		sse += vector.SquaredDistance(s.At(i).Vec, res.Centroids[a]) * s.At(i).Weight
	}
	for j := range counts {
		if counts[j] != res.Counts[j] {
			t.Fatalf("Counts[%d] = %d, recomputed %d", j, res.Counts[j], counts[j])
		}
		if math.Abs(weights[j]-res.Weights[j]) > 1e-9 {
			t.Fatalf("Weights[%d] = %g, recomputed %g", j, res.Weights[j], weights[j])
		}
	}
	if math.Abs(sse-res.SSE) > 1e-6*(1+sse) {
		t.Fatalf("SSE = %g, recomputed %g", res.SSE, sse)
	}
	if math.Abs(res.MSE*s.TotalWeight()-res.SSE) > 1e-6*(1+sse) {
		t.Fatalf("MSE*W = %g != SSE %g", res.MSE*s.TotalWeight(), res.SSE)
	}
	// every point is assigned to its true nearest centroid
	for i := range res.Assignments {
		j, _ := vector.NearestIndex(s.At(i).Vec, res.Centroids)
		di := vector.SquaredDistance(s.At(i).Vec, res.Centroids[res.Assignments[i]])
		dj := vector.SquaredDistance(s.At(i).Vec, res.Centroids[j])
		if di > dj+1e-12 {
			t.Fatalf("point %d assigned to non-nearest centroid", i)
		}
	}
}

func TestWeightsMatterInLloyd(t *testing.T) {
	// One cluster: points at 0 (weight 9) and 10 (weight 1). The single
	// centroid must converge to the weighted mean 1.
	s := dataset.MustNewWeightedSet(1)
	if err := s.Add(dataset.WeightedPoint{Vec: vector.Of(0), Weight: 9}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(dataset.WeightedPoint{Vec: vector.Of(10), Weight: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := RunFromCentroids(s, []vector.Vector{vector.Of(5)}, Config{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Centroids[0][0]-1) > 1e-9 {
		t.Fatalf("weighted centroid = %g, want 1", res.Centroids[0][0])
	}
}

func TestRunFromCentroidsValidation(t *testing.T) {
	s := twoBlobs(t, 5)
	if _, err := RunFromCentroids(s, []vector.Vector{vector.Of(0, 0)}, Config{K: 2}); err == nil {
		t.Fatal("centroid count mismatch should error")
	}
	if _, err := RunFromCentroids(s, []vector.Vector{vector.Of(0)}, Config{K: 1}); err == nil {
		t.Fatal("centroid dim mismatch should error")
	}
	if _, err := RunFromCentroids(dataset.MustNewWeightedSet(2),
		[]vector.Vector{vector.Of(0, 0)}, Config{K: 1}); err == nil {
		t.Fatal("empty input should error")
	}
}

func TestRunFromCentroidsDoesNotMutateInitial(t *testing.T) {
	s := twoBlobs(t, 10)
	init := []vector.Vector{vector.Of(-1, 0), vector.Of(1, 0)}
	keep := []vector.Vector{init[0].Clone(), init[1].Clone()}
	if _, err := RunFromCentroids(s, init, Config{K: 2}); err != nil {
		t.Fatal(err)
	}
	if !init[0].Equal(keep[0]) || !init[1].Equal(keep[1]) {
		t.Fatal("RunFromCentroids mutated caller's initial centroids")
	}
}

func TestZeroTotalWeightErrors(t *testing.T) {
	s := dataset.MustNewWeightedSet(1)
	if err := s.Add(dataset.WeightedPoint{Vec: vector.Of(0), Weight: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunFromCentroids(s, []vector.Vector{vector.Of(0)}, Config{K: 1}); err == nil {
		t.Fatal("all-zero weights should error")
	}
}

func TestEmptyClusterReseedFarthest(t *testing.T) {
	// Three coincident seeds on the same point force empty clusters.
	s := dataset.MustNewWeightedSet(1)
	for _, x := range []float64{0, 0.1, 10, 10.1, 20, 20.1} {
		if err := s.Add(dataset.WeightedPoint{Vec: vector.Of(x), Weight: 1}); err != nil {
			t.Fatal(err)
		}
	}
	init := []vector.Vector{vector.Of(0), vector.Of(0), vector.Of(0)}
	res, err := RunFromCentroids(s, init, Config{K: 3, EmptyPolicy: ReseedFarthest})
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, c := range res.Counts {
		if c > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 3 {
		t.Fatalf("ReseedFarthest left %d non-empty clusters, want 3", nonEmpty)
	}
	if res.MSE > 0.01 {
		t.Fatalf("MSE = %g after reseed, want ~0.0025", res.MSE)
	}
}

func TestEmptyClusterDropPolicy(t *testing.T) {
	s := dataset.MustNewWeightedSet(1)
	for _, x := range []float64{0, 1} {
		if err := s.Add(dataset.WeightedPoint{Vec: vector.Of(x), Weight: 1}); err != nil {
			t.Fatal(err)
		}
	}
	// Second centroid is far away and never acquires points.
	init := []vector.Vector{vector.Of(0.5), vector.Of(1000)}
	res, err := RunFromCentroids(s, init, Config{K: 2, EmptyPolicy: DropEmpty})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[1] != 0 {
		t.Fatalf("far centroid acquired %d points", res.Counts[1])
	}
	if !res.Centroids[1].Equal(vector.Of(1000)) {
		t.Fatalf("DropEmpty moved the stale centroid to %v", res.Centroids[1])
	}
}

func TestMaxIterationsCap(t *testing.T) {
	s := twoBlobs(t, 50)
	res, err := Run(s, Config{K: 2, MaxIterations: 1}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Fatalf("Iterations = %d with cap 1", res.Iterations)
	}
	if res.Converged {
		t.Fatal("cannot be marked converged after a single iteration")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	s := twoBlobs(t, 30)
	a, err := Run(s, Config{K: 4}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s, Config{K: 4}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Centroids {
		if !a.Centroids[j].Equal(b.Centroids[j]) {
			t.Fatalf("same RNG seed, different centroids at %d", j)
		}
	}
	if a.MSE != b.MSE || a.Iterations != b.Iterations {
		t.Fatal("same RNG seed, different run statistics")
	}
}

func TestWeightedCentroidsOutput(t *testing.T) {
	s := twoBlobs(t, 25)
	res, err := Run(s, Config{K: 2}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	wc, err := res.WeightedCentroids(2)
	if err != nil {
		t.Fatal(err)
	}
	if wc.Len() == 0 || wc.Len() > 2 {
		t.Fatalf("weighted centroids len = %d", wc.Len())
	}
	// Sum of weights equals the number of points (the paper: sum w_ij = N_j).
	if math.Abs(wc.TotalWeight()-float64(s.Len())) > 1e-9 {
		t.Fatalf("total weight %g != N %d", wc.TotalWeight(), s.Len())
	}
}

func TestWeightedCentroidsSkipsStarved(t *testing.T) {
	res := &Result{
		Centroids: []vector.Vector{vector.Of(1), vector.Of(2)},
		Weights:   []float64{5, 0},
		Counts:    []int{5, 0},
	}
	wc, err := res.WeightedCentroids(1)
	if err != nil {
		t.Fatal(err)
	}
	if wc.Len() != 1 {
		t.Fatalf("starved centroid not skipped: len=%d", wc.Len())
	}
}

func TestRunRestartsPicksBest(t *testing.T) {
	s := twoBlobs(t, 40)
	rr, err := RunRestarts(s, Config{K: 2}, 10, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.MSEs) != 10 {
		t.Fatalf("MSEs len = %d", len(rr.MSEs))
	}
	for i, m := range rr.MSEs {
		if rr.Best.MSE > m+1e-15 {
			t.Fatalf("best MSE %g worse than run %d's %g", rr.Best.MSE, i, m)
		}
	}
	if rr.MSEs[rr.BestRun] != rr.Best.MSE {
		t.Fatalf("BestRun index inconsistent")
	}
	if rr.TotalIterations < 10 {
		t.Fatalf("TotalIterations = %d for 10 runs", rr.TotalIterations)
	}
	if _, err := RunRestarts(s, Config{K: 2}, 0, rng.New(1)); err == nil {
		t.Fatal("restarts=0 should error")
	}
}

// Property: MSE never increases across Lloyd iterations. We verify the
// endpoint form: running with a higher iteration cap never yields a worse
// MSE from the same start.
func TestLloydMonotoneProperty(t *testing.T) {
	f := func(seed uint16, kRaw uint8) bool {
		r := rng.New(uint64(seed))
		n := 60
		s := dataset.MustNewWeightedSet(2)
		for i := 0; i < n; i++ {
			v := vector.Of(r.NormFloat64()*5, r.NormFloat64()*5)
			if s.Add(dataset.WeightedPoint{Vec: v, Weight: 1 + r.Float64()}) != nil {
				return false
			}
		}
		k := int(kRaw)%8 + 1
		seeds, err := (RandomSeeder{}).Seed(s, k, rng.New(uint64(seed)+99))
		if err != nil {
			return false
		}
		short, err := RunFromCentroids(s, seeds, Config{K: k, MaxIterations: 2})
		if err != nil {
			return false
		}
		long, err := RunFromCentroids(s, seeds, Config{K: k, MaxIterations: 50})
		if err != nil {
			return false
		}
		return long.MSE <= short.MSE+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: k = N yields (near-)zero MSE — every point can be its own
// centroid.
func TestKEqualsNZeroMSE(t *testing.T) {
	r := rng.New(77)
	s := dataset.MustNewWeightedSet(3)
	for i := 0; i < 12; i++ {
		v := vector.Of(r.NormFloat64(), r.NormFloat64(), r.NormFloat64())
		if err := s.Add(dataset.WeightedPoint{Vec: v, Weight: 1}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Run(s, Config{K: 12}, rng.New(78))
	if err != nil {
		t.Fatal(err)
	}
	if res.MSE > 1e-12 {
		t.Fatalf("K=N MSE = %g, want 0", res.MSE)
	}
}
