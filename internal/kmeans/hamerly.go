package kmeans

import (
	"math"

	"streamkm/internal/dataset"
	"streamkm/internal/vector"
)

// This file implements Hamerly's accelerated Lloyd iteration — the
// "several improvements for step 2 that allow us to limit the number of
// points that have to be re-sorted" the paper mentions (§2) but does not
// implement. Each point keeps an upper bound u on the distance to its
// assigned centroid and a lower bound l on the distance to every other
// centroid; most points skip the full nearest-centroid scan in most
// iterations. The algorithm runs to the assignment fixpoint (at which
// the ΔMSE criterion is trivially satisfied) and produces the same
// fixpoint Lloyd's iteration reaches from the same seeds.

// runHamerly is the accelerated counterpart of runNaive. centroids is
// owned by the callee; sc follows the runNaive contract (nil or a
// reusable scratch of matching shape).
func runHamerly(points *dataset.WeightedSet, centroids []vector.Vector, cfg Config, sc *scratch) (*Result, error) {
	n := points.Len()
	dim := points.Dim()
	k := len(centroids)
	if sc == nil || sc.n != n || sc.k != k || sc.dim != dim {
		sc = newScratch(n, k, dim)
		defer sc.release()
	}
	sc.ensureHamerly()
	data, wts := points.Data(), points.Weights()
	sc.loadCentroids(centroids)
	cent := sc.cent

	// initialize resets every bound, sum and assignment with one exact
	// pass — used at start and after an empty-cluster reseed.
	initialize := func() {
		for j := 0; j < k; j++ {
			sc.weights[j] = 0
		}
		zeroFloats(sc.sums)
		for i := 0; i < n; i++ {
			off := i * dim
			x := data[off : off+dim : off+dim]
			best, bd, sd := nearestTwoFlat(x, cent, k, dim)
			sc.assign[i] = best
			sc.upper[i] = bd
			sc.lower[i] = sd
			w := wts[i]
			sc.weights[best] += w
			row := sc.sums[best*dim : (best+1)*dim]
			for t, xv := range x {
				row[t] += w * xv
			}
		}
	}
	initialize()

	res := &Result{}
	for iter := 1; iter <= cfg.MaxIterations; iter++ {
		res.Iterations = iter

		// Update centroids from the incrementally maintained sums.
		empties := false
		maxMove := 0.0
		for j := 0; j < k; j++ {
			if sc.weights[j] == 0 {
				empties = true
				sc.move[j] = 0
				continue
			}
			row := cent[j*dim : (j+1)*dim]
			copy(sc.oldCent, row)
			srow := sc.sums[j*dim : (j+1)*dim]
			for d := 0; d < dim; d++ {
				row[d] = srow[d] / sc.weights[j]
			}
			sc.move[j] = math.Sqrt(vector.SquaredDistanceFloats(sc.oldCent, row))
			if sc.move[j] > maxMove {
				maxMove = sc.move[j]
			}
		}
		if empties && cfg.EmptyPolicy == ReseedFarthest {
			// One exact pass refreshes the distance cache; each empty
			// cluster then repairs from it without rescanning.
			sc.exactDistances(data)
			for j := 0; j < k; j++ {
				if sc.weights[j] == 0 {
					sc.reseedEmpty(data, wts, j)
				}
			}
			initialize()
			continue
		}

		// Maintain bounds under centroid movement.
		for i := 0; i < n; i++ {
			sc.upper[i] += sc.move[sc.assign[i]]
			sc.lower[i] -= maxMove
		}

		// Precompute s[j] = 0.5 * min_{j' != j} dist(c_j, c_j').
		for j := 0; j < k; j++ {
			min := math.Inf(1)
			row := cent[j*dim : (j+1)*dim]
			for j2 := 0; j2 < k; j2++ {
				if j2 == j {
					continue
				}
				if d := math.Sqrt(vector.SquaredDistanceFloats(row, cent[j2*dim:(j2+1)*dim])); d < min {
					min = d
				}
			}
			sc.halfMin[j] = min / 2
		}

		// Assignment with bound-based skipping.
		changes := 0
		for i := 0; i < n; i++ {
			a := sc.assign[i]
			m := sc.lower[i]
			if sc.halfMin[a] > m {
				m = sc.halfMin[a]
			}
			if sc.upper[i] <= m {
				continue // bound skip, no distance computed
			}
			off := i * dim
			x := data[off : off+dim : off+dim]
			sc.upper[i] = math.Sqrt(vector.SquaredDistanceFloats(x, cent[a*dim:(a+1)*dim])) // tighten
			if sc.upper[i] <= m {
				continue // tightened skip, one distance computed
			}
			best, bd, sd := nearestTwoFlat(x, cent, k, dim)
			sc.lower[i] = sd
			sc.upper[i] = bd
			if best != a {
				changes++
				sc.assign[i] = best
				w := wts[i]
				sc.weights[a] -= w
				rowA := sc.sums[a*dim : (a+1)*dim]
				for t, xv := range x {
					rowA[t] += -w * xv
				}
				sc.weights[best] += w
				rowB := sc.sums[best*dim : (best+1)*dim]
				for t, xv := range x {
					rowB[t] += w * xv
				}
			}
		}
		if changes == 0 && maxMove == 0 {
			res.Converged = true
			break
		}
		if changes == 0 {
			// One more centroid update from an unchanged assignment is
			// a fixpoint: the means cannot move again.
			res.Converged = true
			res.Iterations = iter + 1
			for j := 0; j < k; j++ {
				if sc.weights[j] > 0 {
					row := cent[j*dim : (j+1)*dim]
					srow := sc.sums[j*dim : (j+1)*dim]
					for d := 0; d < dim; d++ {
						row[d] = srow[d] / sc.weights[j]
					}
				}
			}
			break
		}
	}

	sc.finishResult(res, data, wts, points.TotalWeight())
	return res, nil
}

// nearestTwoFlat returns the nearest centroid's row index and the
// Euclidean (not squared) distances to the nearest and second-nearest
// rows of the flat k x dim centroid matrix. With a single centroid the
// second distance is +Inf.
func nearestTwoFlat(x, flat []float64, k, dim int) (int, float64, float64) {
	best, bestD, secondD := vector.NearestTwoFlat(x, flat, k, dim)
	return best, math.Sqrt(bestD), math.Sqrt(secondD)
}
