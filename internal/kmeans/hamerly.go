package kmeans

import (
	"math"

	"streamkm/internal/dataset"
	"streamkm/internal/vector"
)

// This file implements Hamerly's accelerated Lloyd iteration — the
// "several improvements for step 2 that allow us to limit the number of
// points that have to be re-sorted" the paper mentions (§2) but does not
// implement. Each point keeps an upper bound u on the distance to its
// assigned centroid and a lower bound l on the distance to every other
// centroid; most points skip the full nearest-centroid scan in most
// iterations. The algorithm runs to the assignment fixpoint (at which
// the ΔMSE criterion is trivially satisfied) and produces the same
// fixpoint Lloyd's iteration reaches from the same seeds.

// runHamerly is the accelerated counterpart of runLloyd. centroids is
// owned by the callee.
func runHamerly(points *dataset.WeightedSet, centroids []vector.Vector, cfg Config) (*Result, error) {
	n := points.Len()
	dim := points.Dim()
	k := len(centroids)

	assign := make([]int, n)
	upper := make([]float64, n)
	lower := make([]float64, n)
	weights := make([]float64, k)
	sums := make([]vector.Vector, k)
	for j := range sums {
		sums[j] = vector.New(dim)
	}
	halfMinDist := make([]float64, k) // s[j] = 0.5 * min_{j' != j} dist(c_j, c_j')
	oldCentroid := vector.New(dim)
	move := make([]float64, k)

	// initialize resets every bound, sum and assignment with one exact
	// pass — used at start and after an empty-cluster reseed.
	initialize := func() {
		for j := 0; j < k; j++ {
			weights[j] = 0
			sums[j].Zero()
		}
		for i := 0; i < n; i++ {
			p := points.At(i)
			best, second := nearestTwo(p.Vec, centroids)
			assign[i] = best.idx
			upper[i] = best.dist
			lower[i] = second.dist
			weights[best.idx] += p.Weight
			sums[best.idx].AddScaled(p.Weight, p.Vec)
		}
	}
	initialize()

	res := &Result{}
	for iter := 1; iter <= cfg.MaxIterations; iter++ {
		res.Iterations = iter

		// Update centroids from the incrementally maintained sums.
		empties := false
		maxMove := 0.0
		for j := 0; j < k; j++ {
			if weights[j] == 0 {
				empties = true
				move[j] = 0
				continue
			}
			oldCentroid.CopyFrom(centroids[j])
			for d := 0; d < dim; d++ {
				centroids[j][d] = sums[j][d] / weights[j]
			}
			move[j] = vector.Distance(oldCentroid, centroids[j])
			if move[j] > maxMove {
				maxMove = move[j]
			}
		}
		if empties && cfg.EmptyPolicy == ReseedFarthest {
			reseedEmpties(points, centroids, assign, weights)
			initialize()
			continue
		}

		// Maintain bounds under centroid movement.
		for i := 0; i < n; i++ {
			upper[i] += move[assign[i]]
			lower[i] -= maxMove
		}

		// Precompute s[j].
		for j := 0; j < k; j++ {
			min := math.Inf(1)
			for j2 := 0; j2 < k; j2++ {
				if j2 == j {
					continue
				}
				if d := vector.Distance(centroids[j], centroids[j2]); d < min {
					min = d
				}
			}
			halfMinDist[j] = min / 2
		}

		// Assignment with bound-based skipping.
		changes := 0
		for i := 0; i < n; i++ {
			a := assign[i]
			m := lower[i]
			if halfMinDist[a] > m {
				m = halfMinDist[a]
			}
			if upper[i] <= m {
				continue // bound skip, no distance computed
			}
			p := points.At(i)
			upper[i] = vector.Distance(p.Vec, centroids[a]) // tighten
			if upper[i] <= m {
				continue // tightened skip, one distance computed
			}
			best, second := nearestTwo(p.Vec, centroids)
			lower[i] = second.dist
			upper[i] = best.dist
			if best.idx != a {
				changes++
				assign[i] = best.idx
				weights[a] -= p.Weight
				sums[a].AddScaled(-p.Weight, p.Vec)
				weights[best.idx] += p.Weight
				sums[best.idx].AddScaled(p.Weight, p.Vec)
			}
		}
		if changes == 0 && maxMove == 0 {
			res.Converged = true
			break
		}
		if changes == 0 {
			// One more centroid update from an unchanged assignment is
			// a fixpoint: the means cannot move again.
			res.Converged = true
			res.Iterations = iter + 1
			for j := 0; j < k; j++ {
				if weights[j] > 0 {
					for d := 0; d < dim; d++ {
						centroids[j][d] = sums[j][d] / weights[j]
					}
				}
			}
			break
		}
	}

	// Final exact pass (same shape as runLloyd's) so the reported MSE,
	// assignments and counts describe one consistent state.
	counts := make([]int, k)
	for j := 0; j < k; j++ {
		counts[j] = 0
		weights[j] = 0
	}
	var sse float64
	for i := 0; i < n; i++ {
		p := points.At(i)
		j, d := vector.NearestIndex(p.Vec, centroids)
		assign[i] = j
		counts[j]++
		weights[j] += p.Weight
		sse += d * p.Weight
	}
	total := points.TotalWeight()
	res.Centroids = centroids
	res.Assignments = assign
	res.Counts = counts
	res.Weights = weights
	res.SSE = sse
	res.MSE = sse / total
	return res, nil
}

// twoNearest holds an index/distance pair for nearestTwo.
type nearHit struct {
	idx  int
	dist float64
}

// nearestTwo returns the nearest and second-nearest centroids by
// Euclidean (not squared) distance.
func nearestTwo(x vector.Vector, cs []vector.Vector) (best, second nearHit) {
	best = nearHit{idx: 0, dist: math.Inf(1)}
	second = nearHit{idx: -1, dist: math.Inf(1)}
	for j, c := range cs {
		d := vector.SquaredDistance(x, c)
		if d < best.dist {
			second = best
			best = nearHit{idx: j, dist: d}
		} else if d < second.dist {
			second = nearHit{idx: j, dist: d}
		}
	}
	best.dist = math.Sqrt(best.dist)
	second.dist = math.Sqrt(second.dist)
	return best, second
}

// reseedEmpties moves each zero-weight centroid onto the globally
// farthest point from its assigned centroid (exact pass; empties are
// rare so the cost is acceptable).
func reseedEmpties(points *dataset.WeightedSet, centroids []vector.Vector, assign []int, weights []float64) {
	for j := range centroids {
		if weights[j] != 0 {
			continue
		}
		if idx := farthestPoint(points, centroids, assign); idx >= 0 {
			centroids[j].CopyFrom(points.At(idx).Vec)
		}
	}
}
