package kmeans

import (
	"streamkm/internal/vector"
)

// scratch owns every mutable buffer a Lloyd run needs, so steady-state
// iterations allocate nothing: assignments, the per-point distance cache,
// per-cluster statistics, the flat centroid matrix, Hamerly's bounds, and
// (when assignment sharding is on) the persistent worker pool. One
// scratch serves one run at a time; RunRestarts gives each restart worker
// its own and reuses it across that worker's runs. A run's Result copies
// out of the scratch, so reuse cannot clobber earlier results.
type scratch struct {
	n, k, dim int

	assign []int
	// dists[i] is the squared distance from point i to its assigned
	// centroid, cached by the assignment sweep. The empty-cluster reseed
	// reads it instead of re-scanning all points per empty cluster.
	dists   []float64
	counts  []int
	weights []float64
	sums    []float64 // k*dim, flat
	cent    []float64 // k*dim, flat centroid matrix

	// Hamerly bound state, allocated on first accelerated run.
	upper   []float64
	lower   []float64
	halfMin []float64
	move    []float64
	oldCent []float64 // dim

	// mbCounts is the mini-batch solver's per-center learning-rate
	// mass (the cumulative sampled weight behind each center),
	// allocated on first mini-batch run. Distinct from weights, which
	// every full evaluation sweep resets.
	mbCounts []float64

	// pool shards the assignment sweep when Config.Workers >= 2; started
	// lazily, reused across iterations and runs, stopped by release.
	pool *assignPool
}

func newScratch(n, k, dim int) *scratch {
	return &scratch{
		n:       n,
		k:       k,
		dim:     dim,
		assign:  make([]int, n),
		dists:   make([]float64, n),
		counts:  make([]int, k),
		weights: make([]float64, k),
		sums:    make([]float64, k*dim),
		cent:    make([]float64, k*dim),
	}
}

// ensureHamerly allocates the bound buffers used only by the accelerated
// iteration.
func (sc *scratch) ensureHamerly() {
	if sc.upper != nil {
		return
	}
	sc.upper = make([]float64, sc.n)
	sc.lower = make([]float64, sc.n)
	sc.halfMin = make([]float64, sc.k)
	sc.move = make([]float64, sc.k)
	sc.oldCent = make([]float64, sc.dim)
}

// release stops the worker pool, if one was started. The slabs themselves
// are garbage-collected with the scratch.
func (sc *scratch) release() {
	if sc.pool != nil {
		sc.pool.stop()
		sc.pool = nil
	}
}

func zeroFloats(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

// loadCentroids copies the seed centroids into the flat matrix.
func (sc *scratch) loadCentroids(centroids []vector.Vector) {
	for j, c := range centroids {
		copy(sc.cent[j*sc.dim:(j+1)*sc.dim], c)
	}
}

// assignSerial runs one exact assignment sweep: nearest centroid, cached
// distance, and per-cluster count/weight/sum accumulation, returning the
// weighted SSE. Accumulation order matches the pre-flat implementation
// component for component, so results are bit-identical to it.
func (sc *scratch) assignSerial(data, wts []float64) float64 {
	k, dim, n := sc.k, sc.dim, sc.n
	for j := 0; j < k; j++ {
		sc.counts[j] = 0
		sc.weights[j] = 0
	}
	zeroFloats(sc.sums)
	var sse float64
	for i := 0; i < n; i++ {
		off := i * dim
		x := data[off : off+dim : off+dim]
		j, d := vector.NearestIndexFlat(x, sc.cent, k, dim)
		sc.assign[i] = j
		sc.dists[i] = d
		w := wts[i]
		sc.counts[j]++
		sc.weights[j] += w
		row := sc.sums[j*dim : (j+1)*dim]
		for t, xv := range x {
			row[t] += w * xv
		}
		sse += d * w
	}
	return sse
}

// assignParallel shards the assignment sweep across workers via the
// persistent pool and reduces the shard statistics in fixed segment
// order — the same reduction order as the pre-pool parallelAssign, so
// results are bit-identical per worker count.
func (sc *scratch) assignParallel(data, wts []float64, workers int) float64 {
	w := workers
	if w > sc.n {
		w = sc.n
	}
	if sc.pool == nil || sc.pool.w != w {
		if sc.pool != nil {
			sc.pool.stop()
		}
		sc.pool = newAssignPool(w, sc.n, sc.k, sc.dim)
	}
	sc.pool.sweep(data, wts, sc.cent, sc.assign, sc.dists)

	k, dim := sc.k, sc.dim
	for j := 0; j < k; j++ {
		sc.counts[j] = 0
		sc.weights[j] = 0
	}
	zeroFloats(sc.sums)
	var sse float64
	for s := 0; s < w; s++ {
		sh := &sc.pool.shards[s]
		for j := 0; j < k; j++ {
			sc.counts[j] += sh.counts[j]
			sc.weights[j] += sh.weights[j]
			row := sc.sums[j*dim : (j+1)*dim]
			srow := sh.sums[j*dim : (j+1)*dim]
			for t := range row {
				row[t] += srow[t]
			}
		}
		sse += sh.sse
	}
	return sse
}

// exactDistances refreshes the distance cache against the current
// centroids in one O(n) pass — used by the accelerated path before a
// reseed, where the cached bounds are not exact distances.
func (sc *scratch) exactDistances(data []float64) {
	dim, n := sc.dim, sc.n
	for i := 0; i < n; i++ {
		off := i * dim
		sc.dists[i] = vector.SquaredDistanceFloats(data[off:off+dim], sc.cent[sc.assign[i]*dim:(sc.assign[i]+1)*dim])
	}
}

// farthestCached returns the index of the point with the largest cached
// weighted squared distance to its assigned centroid, or -1 when every
// point has zero weight. Callers zero the winner's cache entry after
// consuming it so consecutive empty clusters reseed onto distinct points.
func (sc *scratch) farthestCached(wts []float64) int {
	best, bestD := -1, -1.0
	for i, d := range sc.dists[:sc.n] {
		if wts[i] == 0 {
			continue
		}
		if dw := d * wts[i]; dw > bestD {
			best, bestD = i, dw
		}
	}
	return best
}

// reseedEmpty repairs one empty cluster from the distance cache: move
// centroid j onto the point with the largest cached weighted squared
// distance, then fold distances to the relocated centroid back into the
// cache. The fold keeps successive empty-cluster repairs honest — a
// point right next to a just-placed centroid no longer looks far away,
// so consecutive reseeds land on well-separated points.
func (sc *scratch) reseedEmpty(data, wts []float64, j int) {
	idx := sc.farthestCached(wts)
	if idx < 0 {
		return
	}
	dim := sc.dim
	c := sc.cent[j*dim : (j+1)*dim : (j+1)*dim]
	copy(c, data[idx*dim:(idx+1)*dim])
	sc.dists[idx] = 0
	for i := 0; i < sc.n; i++ {
		off := i * dim
		if d := vector.SquaredDistanceFloats(data[off:off+dim], c); d < sc.dists[i] {
			sc.dists[i] = d
		}
	}
}

// finishResult runs the final consistent assignment against the final
// centroids — so the reported MSE, assignments, and counts all describe
// one state — and copies every output buffer out of the scratch, so the
// Result survives scratch reuse by later runs.
func (sc *scratch) finishResult(res *Result, data, wts []float64, totalWeight float64) {
	k, dim, n := sc.k, sc.dim, sc.n
	for j := 0; j < k; j++ {
		sc.counts[j] = 0
		sc.weights[j] = 0
	}
	var sse float64
	for i := 0; i < n; i++ {
		off := i * dim
		x := data[off : off+dim : off+dim]
		j, d := vector.NearestIndexFlat(x, sc.cent, k, dim)
		sc.assign[i] = j
		sc.counts[j]++
		sc.weights[j] += wts[i]
		sse += d * wts[i]
	}
	centOut := make([]float64, k*dim)
	copy(centOut, sc.cent)
	cents := make([]vector.Vector, k)
	for j := range cents {
		cents[j] = vector.Vector(centOut[j*dim : (j+1)*dim : (j+1)*dim])
	}
	res.Centroids = cents
	res.Assignments = append([]int(nil), sc.assign...)
	res.Counts = append([]int(nil), sc.counts...)
	res.Weights = append([]float64(nil), sc.weights...)
	res.SSE = sse
	res.MSE = sse / totalWeight
}
