package kmeans

import (
	"math"
	"testing"

	"streamkm/internal/dataset"
	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

func TestValidateSolver(t *testing.T) {
	for _, ok := range []string{"", SolverLloyd, SolverMiniBatch} {
		if err := ValidateSolver(ok); err != nil {
			t.Errorf("ValidateSolver(%q) = %v, want nil", ok, err)
		}
	}
	if err := ValidateSolver("sgd"); err == nil {
		t.Error("unknown solver should be rejected")
	}
	if _, err := Run(twoBlobs(t, 10), Config{K: 2, Solver: "sgd"}, rng.New(1)); err == nil {
		t.Error("Run should reject an unknown solver")
	}
}

func TestMiniBatchSeparatesBlobs(t *testing.T) {
	s := twoBlobs(t, 100)
	res, err := Run(s, Config{K: 2, Solver: SolverMiniBatch}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	var left, right bool
	for _, c := range res.Centroids {
		if math.Abs(c[0]+10) < 1 {
			left = true
		}
		if math.Abs(c[0]-10) < 1 {
			right = true
		}
	}
	if !left || !right {
		t.Fatalf("mini-batch centroids did not find both blobs: %v", res.Centroids)
	}
	if res.MSE > 0.1 {
		t.Fatalf("MSE = %g, want near within-blob variance", res.MSE)
	}
}

// TestMiniBatchDeterminism pins the solver's reproducibility contract:
// randomness comes only from the seeded sampling stream, so equal
// configs and RNG states give bitwise-equal results.
func TestMiniBatchDeterminism(t *testing.T) {
	s := randomWeighted(500, 7)
	cfg := Config{K: 8, Solver: SolverMiniBatch}
	a, err := Run(s, cfg, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s, cfg, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if centroidChecksum(a) != centroidChecksum(b) {
		t.Fatal("equal seeds should give bitwise-equal mini-batch centroids")
	}
	if a.Iterations != b.Iterations || a.MSE != b.MSE {
		t.Fatalf("runs differ: %d/%g vs %d/%g", a.Iterations, a.MSE, b.Iterations, b.MSE)
	}
}

// TestMiniBatchQualityNearLloyd bounds the sampling approximation: on a
// clusterable workload the mini-batch answer stays within a small
// factor of the full-Lloyd answer from the same seed.
func TestMiniBatchQualityNearLloyd(t *testing.T) {
	s := randomWeighted(2000, 11)
	full, err := RunRestarts(s, Config{K: 10}, 3, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	mb, err := RunRestarts(s, Config{K: 10, Solver: SolverMiniBatch}, 3, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if mb.Best.MSE > full.Best.MSE*1.05 {
		t.Fatalf("mini-batch MSE %g exceeds 1.05x full Lloyd MSE %g", mb.Best.MSE, full.Best.MSE)
	}
}

// TestMiniBatchRestartsBitIdenticalAcrossWorkerCounts extends the
// package's parallel-restart equivalence guarantee to the new solver:
// per-run sample seeds are pre-derived serially, so fan-out cannot
// change the answer.
func TestMiniBatchRestartsBitIdenticalAcrossWorkerCounts(t *testing.T) {
	s := randomWeighted(400, 9)
	base, err := RunRestarts(s, Config{K: 6, Solver: SolverMiniBatch, Parallel: 1}, 5, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	for _, parallel := range []int{2, 4, 8} {
		rr, err := RunRestarts(s, Config{K: 6, Solver: SolverMiniBatch, Parallel: parallel}, 5, rng.New(42))
		if err != nil {
			t.Fatal(err)
		}
		if rr.BestRun != base.BestRun {
			t.Fatalf("Parallel=%d: BestRun %d vs %d", parallel, rr.BestRun, base.BestRun)
		}
		if centroidChecksum(rr.Best) != centroidChecksum(base.Best) {
			t.Fatalf("Parallel=%d: winning centroids differ bitwise", parallel)
		}
		for run := range base.MSEs {
			if math.Float64bits(rr.MSEs[run]) != math.Float64bits(base.MSEs[run]) {
				t.Fatalf("Parallel=%d: run %d MSE differs", parallel, run)
			}
		}
	}
}

func TestMiniBatchConfigValidation(t *testing.T) {
	s := randomWeighted(50, 3)
	if _, err := Run(s, Config{K: 3, Solver: SolverMiniBatch, BatchSize: -1}, rng.New(1)); err == nil {
		t.Fatal("negative BatchSize should error")
	}
	if _, err := Run(s, Config{K: 3, Solver: SolverMiniBatch, InitialCounts: []float64{1, 2}}, rng.New(1)); err == nil {
		t.Fatal("InitialCounts of wrong length should error")
	}
	seeds, err := (RandomSeeder{}).Seed(s, 3, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{K: 3, Solver: SolverMiniBatch, FocusRows: []int{-1}},
		{K: 3, Solver: SolverMiniBatch, FocusRows: []int{s.Len()}},
	}
	for i, cfg := range bad {
		if _, err := RunFromCentroids(s, seeds, cfg); err == nil {
			t.Fatalf("case %d: out-of-range focus row should error", i)
		}
	}
}

// TestMiniBatchWarmStartFocusMovesAnswer drives the snapshot-index
// pattern directly: warm-start from converged centers, then present
// changed rows as the focus batch. The focused refine must move the
// answer toward the new data even before any sampling happens.
func TestMiniBatchWarmStartFocusMovesAnswer(t *testing.T) {
	s := twoBlobs(t, 50)
	full, err := Run(s, Config{K: 2}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// Append a heavy outlier cluster at x=+30 and refine from the old
	// answer with the new rows focused.
	for i := 0; i < 10; i++ {
		if err := s.Add(dataset.WeightedPoint{Vec: vector.Of(30, 0), Weight: 25}); err != nil {
			t.Fatal(err)
		}
	}
	focus := make([]int, 10)
	for i := range focus {
		focus[i] = s.Len() - 10 + i
	}
	res, err := RunFromCentroids(s, full.Centroids, Config{
		K: 2, Solver: SolverMiniBatch,
		FocusRows:     focus,
		InitialCounts: full.Weights,
		MaxIterations: 40,
		SampleSeed:    99,
	})
	if err != nil {
		t.Fatal(err)
	}
	var nearNew bool
	for _, c := range res.Centroids {
		if c[0] > 5 {
			nearNew = true
		}
	}
	if !nearNew {
		t.Fatalf("focused warm refine ignored the new mass: %v", res.Centroids)
	}
}
