package dataset

import (
	"fmt"

	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

// MixtureComponent is one Gaussian component of a synthetic grid cell:
// an axis-aligned Gaussian with per-dimension standard deviations and a
// mixing proportion.
type MixtureComponent struct {
	Mean   vector.Vector
	StdDev vector.Vector
	Weight float64 // relative mixing proportion, > 0
}

// Mixture is a Gaussian mixture model used to synthesize grid-cell data
// with controllable cluster structure, standing in for the paper's
// R-recreated MISR distributions.
type Mixture struct {
	dim        int
	components []MixtureComponent
	cum        []float64 // cumulative normalized weights for sampling
}

// NewMixture validates and builds a mixture. All components must share
// the mixture dimensionality and have positive weight and non-negative
// standard deviations.
func NewMixture(d int, comps []MixtureComponent) (*Mixture, error) {
	if d <= 0 {
		return nil, fmt.Errorf("dataset: mixture dimension must be positive, got %d", d)
	}
	if len(comps) == 0 {
		return nil, fmt.Errorf("dataset: mixture needs at least one component")
	}
	m := &Mixture{dim: d}
	var total float64
	for i, c := range comps {
		if len(c.Mean) != d || len(c.StdDev) != d {
			return nil, fmt.Errorf("dataset: component %d has wrong dimension", i)
		}
		if c.Weight <= 0 {
			return nil, fmt.Errorf("dataset: component %d has non-positive weight %g", i, c.Weight)
		}
		for j, sd := range c.StdDev {
			if sd < 0 {
				return nil, fmt.Errorf("dataset: component %d has negative stddev in dim %d", i, j)
			}
		}
		m.components = append(m.components, MixtureComponent{
			Mean:   c.Mean.Clone(),
			StdDev: c.StdDev.Clone(),
			Weight: c.Weight,
		})
		total += c.Weight
	}
	m.cum = make([]float64, len(comps))
	var acc float64
	for i, c := range m.components {
		acc += c.Weight / total
		m.cum[i] = acc
	}
	m.cum[len(m.cum)-1] = 1 // guard against floating-point shortfall
	return m, nil
}

// Dim returns the mixture dimensionality.
func (m *Mixture) Dim() int { return m.dim }

// NumComponents returns the number of Gaussian components.
func (m *Mixture) NumComponents() int { return len(m.components) }

// Component returns a copy of component i.
func (m *Mixture) Component(i int) MixtureComponent {
	c := m.components[i]
	return MixtureComponent{Mean: c.Mean.Clone(), StdDev: c.StdDev.Clone(), Weight: c.Weight}
}

// Sample draws one point from the mixture.
func (m *Mixture) Sample(r *rng.RNG) Point {
	p := vector.New(m.dim)
	m.SampleInto(r, p)
	return p
}

// SampleInto draws one point from the mixture into dst (len m.Dim()),
// the allocation-free path used to fill flat buffers directly. It
// consumes the RNG exactly as Sample.
func (m *Mixture) SampleInto(r *rng.RNG, dst []float64) {
	u := r.Float64()
	idx := 0
	for idx < len(m.cum)-1 && u >= m.cum[idx] {
		idx++
	}
	c := m.components[idx]
	for j := 0; j < m.dim; j++ {
		dst[j] = c.Mean[j] + c.StdDev[j]*r.NormFloat64()
	}
}

// SampleSet draws n points into a fresh Set.
func (m *Mixture) SampleSet(r *rng.RNG, n int) (*Set, error) {
	if n < 0 {
		return nil, fmt.Errorf("dataset: negative sample count %d", n)
	}
	s, err := NewSet(m.dim)
	if err != nil {
		return nil, err
	}
	// Fill the flat slab directly: one slab allocation, no per-point
	// vectors.
	s.data = make([]float64, n*m.dim)
	for i := 0; i < n; i++ {
		m.SampleInto(r, s.data[i*m.dim:(i+1)*m.dim])
	}
	return s, nil
}

// CellSpec describes a synthetic MISR-like grid cell: the paper's tests
// use D = 6 attributes and a fixed k = 40, with N varying per experiment.
type CellSpec struct {
	Dim         int     // attribute count, paper uses 6
	Clusters    int     // latent cluster count in the cell
	Spread      float64 // typical within-cluster stddev
	Separation  float64 // typical between-cluster mean separation
	WeightSkew  float64 // 0 = equal-sized clusters, 1 = strongly skewed
	NoiseFrac   float64 // fraction of points drawn from broad background noise
	NoiseSpread float64 // stddev of the background component
}

// DefaultCellSpec mirrors the paper's workload: 6-D points with enough
// latent structure that k = 40 is a sensible choice.
func DefaultCellSpec() CellSpec {
	return CellSpec{
		Dim:         6,
		Clusters:    40,
		Spread:      1.0,
		Separation:  12.0,
		WeightSkew:  0.5,
		NoiseFrac:   0.02,
		NoiseSpread: 30.0,
	}
}

// NewCellMixture randomizes a mixture according to spec. Component means
// are placed uniformly in a hypercube of side Separation*2 per dimension;
// weights follow a geometric-ish skew controlled by WeightSkew; an
// optional broad background component models sensor noise.
func NewCellMixture(spec CellSpec, r *rng.RNG) (*Mixture, error) {
	if spec.Dim <= 0 {
		return nil, fmt.Errorf("dataset: CellSpec.Dim must be positive")
	}
	if spec.Clusters <= 0 {
		return nil, fmt.Errorf("dataset: CellSpec.Clusters must be positive")
	}
	if spec.NoiseFrac < 0 || spec.NoiseFrac >= 1 {
		return nil, fmt.Errorf("dataset: CellSpec.NoiseFrac must be in [0,1)")
	}
	comps := make([]MixtureComponent, 0, spec.Clusters+1)
	w := 1.0
	for i := 0; i < spec.Clusters; i++ {
		mean := vector.New(spec.Dim)
		sd := vector.New(spec.Dim)
		for j := 0; j < spec.Dim; j++ {
			mean[j] = (r.Float64()*2 - 1) * spec.Separation
			// vary spread modestly per dimension for non-spherical clusters
			sd[j] = spec.Spread * (0.5 + r.Float64())
		}
		comps = append(comps, MixtureComponent{Mean: mean, StdDev: sd, Weight: w})
		// geometric decay of cluster sizes, interpolated by WeightSkew
		w *= 1 - spec.WeightSkew*0.1
	}
	if spec.NoiseFrac > 0 {
		var structured float64
		for _, c := range comps {
			structured += c.Weight
		}
		noiseW := structured * spec.NoiseFrac / (1 - spec.NoiseFrac)
		sd := vector.New(spec.Dim)
		for j := range sd {
			sd[j] = spec.NoiseSpread
		}
		comps = append(comps, MixtureComponent{
			Mean:   vector.New(spec.Dim),
			StdDev: sd,
			Weight: noiseW,
		})
	}
	return NewMixture(spec.Dim, comps)
}

// GenerateCell synthesizes one grid cell of n points from spec, shuffled
// into random arrival order as the paper's stream model requires.
func GenerateCell(spec CellSpec, n int, seed uint64) (*Set, error) {
	r := rng.New(seed)
	mix, err := NewCellMixture(spec, r)
	if err != nil {
		return nil, err
	}
	s, err := mix.SampleSet(r, n)
	if err != nil {
		return nil, err
	}
	s.Shuffle(r)
	return s, nil
}
