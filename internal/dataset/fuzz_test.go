package dataset

import (
	"bytes"
	"strings"
	"testing"

	"streamkm/internal/vector"
)

// FuzzReadCSV: arbitrary text must be rejected or parsed, never panic;
// parsed sets must round-trip through WriteCSV/ReadCSV.
func FuzzReadCSV(f *testing.F) {
	f.Add("1,2,3\n4,5,6\n")
	f.Add("1;2\n")
	f.Add("")
	f.Add("a,b\n1,2\n")
	f.Add("1,2\n3\n")
	f.Add("1e308,-1e308\n")

	f.Fuzz(func(t *testing.T, data string) {
		s, err := ReadCSV(strings.NewReader(data), CSVOptions{})
		if err != nil {
			return
		}
		if s.Len() == 0 || s.Dim() == 0 {
			t.Fatal("ReadCSV accepted an empty set")
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, s); err != nil {
			t.Fatalf("accepted set failed to write: %v", err)
		}
		got, err := ReadCSV(bytes.NewReader(buf.Bytes()), CSVOptions{})
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if got.Len() != s.Len() || got.Dim() != s.Dim() {
			t.Fatalf("round trip changed shape: %dx%d vs %dx%d",
				got.Len(), got.Dim(), s.Len(), s.Dim())
		}
	})
}

// FuzzDecodeWeightedSet: same contract for the binary weighted-set
// decoder used in checkpoints.
func FuzzDecodeWeightedSet(f *testing.F) {
	s := MustNewWeightedSet(2)
	for i := 0; i < 4; i++ {
		if err := s.Add(WeightedPoint{Vec: vector.Of(float64(i), 1), Weight: float64(i + 1)}); err != nil {
			f.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := EncodeWeightedSet(&buf, s); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:10])
	f.Add([]byte("SKMW"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeWeightedSet(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < got.Len(); i++ {
			if got.At(i).Weight < 0 {
				t.Fatal("decoder accepted a negative weight")
			}
		}
		var out bytes.Buffer
		if err := EncodeWeightedSet(&out, got); err != nil {
			t.Fatalf("accepted set failed to re-encode: %v", err)
		}
		if _, err := DecodeWeightedSet(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("re-encoded set failed to decode: %v", err)
		}
	})
}
