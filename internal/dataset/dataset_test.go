package dataset

import (
	"testing"

	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

func TestNewSetValidation(t *testing.T) {
	if _, err := NewSet(0); err == nil {
		t.Fatal("NewSet(0) should error")
	}
	if _, err := NewSet(-1); err == nil {
		t.Fatal("NewSet(-1) should error")
	}
	s, err := NewSet(3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dim() != 3 || s.Len() != 0 {
		t.Fatalf("fresh set dim=%d len=%d", s.Dim(), s.Len())
	}
}

func TestSetAddDimCheck(t *testing.T) {
	s := MustNewSet(2)
	if err := s.Add(vector.Of(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(vector.Of(1, 2, 3)); err == nil {
		t.Fatal("wrong-dimension Add should error")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after one valid add", s.Len())
	}
	if !s.At(0).Equal(vector.Of(1, 2)) {
		t.Fatalf("At(0) = %v", s.At(0))
	}
}

func TestFromPoints(t *testing.T) {
	s, err := FromPoints(2, []Point{vector.Of(1, 2), vector.Of(3, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if _, err := FromPoints(2, []Point{vector.Of(1)}); err == nil {
		t.Fatal("mismatched point should error")
	}
	if _, err := FromPoints(0, nil); err == nil {
		t.Fatal("zero dim should error")
	}
}

func TestSetClone(t *testing.T) {
	s := MustNewSet(1)
	if err := s.Add(vector.Of(1)); err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	c.At(0)[0] = 42
	if s.At(0)[0] != 1 {
		t.Fatal("Clone aliases point storage")
	}
}

func TestSetShufflePreservesMultiset(t *testing.T) {
	s := MustNewSet(1)
	for i := 0; i < 100; i++ {
		if err := s.Add(vector.Of(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Shuffle(rng.New(5))
	seen := make([]bool, 100)
	for i := 0; i < 100; i++ {
		v := int(s.At(i)[0])
		if seen[v] {
			t.Fatalf("duplicate value %d after shuffle", v)
		}
		seen[v] = true
	}
}

func TestBounds(t *testing.T) {
	s := MustNewSet(2)
	if _, _, err := s.Bounds(); err != ErrEmptySet {
		t.Fatalf("Bounds of empty = %v, want ErrEmptySet", err)
	}
	for _, p := range []Point{vector.Of(1, 5), vector.Of(-3, 7)} {
		if err := s.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	min, max, err := s.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	if !min.Equal(vector.Of(-3, 5)) || !max.Equal(vector.Of(1, 7)) {
		t.Fatalf("Bounds = [%v, %v]", min, max)
	}
}

func TestWeightedSet(t *testing.T) {
	if _, err := NewWeightedSet(0); err == nil {
		t.Fatal("zero dim should error")
	}
	s := MustNewWeightedSet(2)
	if err := s.Add(WeightedPoint{Vec: vector.Of(1, 2), Weight: 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(WeightedPoint{Vec: vector.Of(1), Weight: 1}); err == nil {
		t.Fatal("wrong dim should error")
	}
	if err := s.Add(WeightedPoint{Vec: vector.Of(1, 1), Weight: -1}); err == nil {
		t.Fatal("negative weight should error")
	}
	if err := s.Add(WeightedPoint{Vec: vector.Of(0, 0), Weight: 2}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if tw := s.TotalWeight(); tw != 5 {
		t.Fatalf("TotalWeight = %g", tw)
	}
	if p := s.At(0); p.Weight != 3 {
		t.Fatalf("At(0).Weight = %g", p.Weight)
	}
}

func TestWeightedSetAppend(t *testing.T) {
	a := MustNewWeightedSet(1)
	b := MustNewWeightedSet(1)
	if err := a.Add(WeightedPoint{Vec: vector.Of(1), Weight: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(WeightedPoint{Vec: vector.Of(2), Weight: 2}); err != nil {
		t.Fatal(err)
	}
	if err := a.Append(b); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 2 || a.TotalWeight() != 3 {
		t.Fatalf("after append: len=%d weight=%g", a.Len(), a.TotalWeight())
	}
	c := MustNewWeightedSet(2)
	if err := a.Append(c); err == nil {
		t.Fatal("dim mismatch append should error")
	}
}

func TestUnweighted(t *testing.T) {
	s := MustNewSet(1)
	for i := 0; i < 5; i++ {
		if err := s.Add(vector.Of(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	w := Unweighted(s)
	if w.Len() != 5 {
		t.Fatalf("Len = %d", w.Len())
	}
	if tw := w.TotalWeight(); tw != 5 {
		t.Fatalf("TotalWeight = %g, want N", tw)
	}
}

func TestWeightedPointClone(t *testing.T) {
	p := WeightedPoint{Vec: vector.Of(1, 2), Weight: 4}
	c := p.Clone()
	c.Vec[0] = 9
	if p.Vec[0] != 1 {
		t.Fatal("Clone aliases vector")
	}
}
