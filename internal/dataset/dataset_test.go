package dataset

import (
	"testing"

	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

func TestNewSetValidation(t *testing.T) {
	if _, err := NewSet(0); err == nil {
		t.Fatal("NewSet(0) should error")
	}
	if _, err := NewSet(-1); err == nil {
		t.Fatal("NewSet(-1) should error")
	}
	s, err := NewSet(3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dim() != 3 || s.Len() != 0 {
		t.Fatalf("fresh set dim=%d len=%d", s.Dim(), s.Len())
	}
}

func TestSetAddDimCheck(t *testing.T) {
	s := MustNewSet(2)
	if err := s.Add(vector.Of(1, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(vector.Of(1, 2, 3)); err == nil {
		t.Fatal("wrong-dimension Add should error")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after one valid add", s.Len())
	}
	if !s.At(0).Equal(vector.Of(1, 2)) {
		t.Fatalf("At(0) = %v", s.At(0))
	}
}

func TestFromPoints(t *testing.T) {
	s, err := FromPoints(2, []Point{vector.Of(1, 2), vector.Of(3, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if _, err := FromPoints(2, []Point{vector.Of(1)}); err == nil {
		t.Fatal("mismatched point should error")
	}
	if _, err := FromPoints(0, nil); err == nil {
		t.Fatal("zero dim should error")
	}
}

func TestSetClone(t *testing.T) {
	s := MustNewSet(1)
	if err := s.Add(vector.Of(1)); err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	c.At(0)[0] = 42
	if s.At(0)[0] != 1 {
		t.Fatal("Clone aliases point storage")
	}
}

func TestSetShufflePreservesMultiset(t *testing.T) {
	s := MustNewSet(1)
	for i := 0; i < 100; i++ {
		if err := s.Add(vector.Of(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Shuffle(rng.New(5))
	seen := make([]bool, 100)
	for i := 0; i < 100; i++ {
		v := int(s.At(i)[0])
		if seen[v] {
			t.Fatalf("duplicate value %d after shuffle", v)
		}
		seen[v] = true
	}
}

func TestBounds(t *testing.T) {
	s := MustNewSet(2)
	if _, _, err := s.Bounds(); err != ErrEmptySet {
		t.Fatalf("Bounds of empty = %v, want ErrEmptySet", err)
	}
	for _, p := range []Point{vector.Of(1, 5), vector.Of(-3, 7)} {
		if err := s.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	min, max, err := s.Bounds()
	if err != nil {
		t.Fatal(err)
	}
	if !min.Equal(vector.Of(-3, 5)) || !max.Equal(vector.Of(1, 7)) {
		t.Fatalf("Bounds = [%v, %v]", min, max)
	}
}

func TestWeightedSet(t *testing.T) {
	if _, err := NewWeightedSet(0); err == nil {
		t.Fatal("zero dim should error")
	}
	s := MustNewWeightedSet(2)
	if err := s.Add(WeightedPoint{Vec: vector.Of(1, 2), Weight: 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(WeightedPoint{Vec: vector.Of(1), Weight: 1}); err == nil {
		t.Fatal("wrong dim should error")
	}
	if err := s.Add(WeightedPoint{Vec: vector.Of(1, 1), Weight: -1}); err == nil {
		t.Fatal("negative weight should error")
	}
	if err := s.Add(WeightedPoint{Vec: vector.Of(0, 0), Weight: 2}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if tw := s.TotalWeight(); tw != 5 {
		t.Fatalf("TotalWeight = %g", tw)
	}
	if p := s.At(0); p.Weight != 3 {
		t.Fatalf("At(0).Weight = %g", p.Weight)
	}
}

func TestWeightedSetAppend(t *testing.T) {
	a := MustNewWeightedSet(1)
	b := MustNewWeightedSet(1)
	if err := a.Add(WeightedPoint{Vec: vector.Of(1), Weight: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(WeightedPoint{Vec: vector.Of(2), Weight: 2}); err != nil {
		t.Fatal(err)
	}
	if err := a.Append(b); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 2 || a.TotalWeight() != 3 {
		t.Fatalf("after append: len=%d weight=%g", a.Len(), a.TotalWeight())
	}
	c := MustNewWeightedSet(2)
	if err := a.Append(c); err == nil {
		t.Fatal("dim mismatch append should error")
	}
}

func TestUnweighted(t *testing.T) {
	s := MustNewSet(1)
	for i := 0; i < 5; i++ {
		if err := s.Add(vector.Of(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	w := Unweighted(s)
	if w.Len() != 5 {
		t.Fatalf("Len = %d", w.Len())
	}
	if tw := w.TotalWeight(); tw != 5 {
		t.Fatalf("TotalWeight = %g, want N", tw)
	}
}

func TestWeightedPointClone(t *testing.T) {
	p := WeightedPoint{Vec: vector.Of(1, 2), Weight: 4}
	c := p.Clone()
	c.Vec[0] = 9
	if p.Vec[0] != 1 {
		t.Fatal("Clone aliases vector")
	}
}

// --- flat-layout contract tests ---

func TestSetFlatLayout(t *testing.T) {
	s := MustNewSet(3)
	s.Grow(2)
	if err := s.Add(vector.Of(1, 2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFlat([]float64{4, 5, 6, 7, 8, 9}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	want := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	data := s.Data()
	for i, v := range want {
		if data[i] != v {
			t.Fatalf("Data[%d] = %g, want %g", i, data[i], v)
		}
	}
	if err := s.AppendFlat([]float64{1, 2}); err == nil {
		t.Fatal("AppendFlat with non-multiple length should error")
	}
}

func TestSetAtIsZeroCopyView(t *testing.T) {
	s := MustNewSet(2)
	_ = s.Add(vector.Of(1, 2))
	_ = s.Add(vector.Of(3, 4))
	v := s.At(1)
	if v[0] != 3 || v[1] != 4 {
		t.Fatalf("At(1) = %v", v)
	}
	// The view aliases the slab: a write through it is visible via Data.
	// (Callers must not do this; the test pins the zero-copy contract.)
	v[0] = 30
	if s.Data()[2] != 30 {
		t.Fatal("At is not a view into the flat slab")
	}
	// The view is capped: appending to it cannot clobber the next point.
	grown := append(v[:1:1], 99)
	_ = grown
	if s.Data()[3] != 4 {
		t.Fatal("append through a view clobbered the neighbor")
	}
}

func TestSetAddCopies(t *testing.T) {
	s := MustNewSet(2)
	p := vector.Of(1, 2)
	_ = s.Add(p)
	p[0] = 77
	if s.At(0)[0] != 1 {
		t.Fatal("Add must copy the point, not alias it")
	}
}

func TestWeightedSetFlatLayout(t *testing.T) {
	s := MustNewWeightedSet(2)
	s.Grow(2)
	_ = s.Add(WeightedPoint{Vec: vector.Of(1, 2), Weight: 3})
	if err := s.AppendFlat([]float64{4, 5}, []float64{6}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.WeightAt(1); got != 6 {
		t.Fatalf("WeightAt(1) = %g", got)
	}
	if v := s.VecAt(1); v[0] != 4 || v[1] != 5 {
		t.Fatalf("VecAt(1) = %v", v)
	}
	if w := s.Weights(); len(w) != 2 || w[0] != 3 {
		t.Fatalf("Weights = %v", w)
	}
	if err := s.AppendFlat([]float64{1, 2}, []float64{1, 1}); err == nil {
		t.Fatal("mismatched flat append should error")
	}
	if err := s.AppendFlat([]float64{1, 2}, []float64{-1}); err == nil {
		t.Fatal("negative weight in flat append should error")
	}
}

func TestUnweightedDoesNotAlias(t *testing.T) {
	s := MustNewSet(2)
	_ = s.Add(vector.Of(1, 2))
	w := Unweighted(s)
	s.Shuffle(rng.New(1)) // in-place content moves must not leak into w
	s.Data()[0] = 99
	if w.VecAt(0)[0] != 1 || w.VecAt(0)[1] != 2 {
		t.Fatalf("Unweighted aliases the source slab: %v", w.VecAt(0))
	}
}

func TestShufflePermutesWholePoints(t *testing.T) {
	s := MustNewSet(2)
	for i := 0; i < 8; i++ {
		_ = s.Add(vector.Of(float64(i), float64(i)+0.5))
	}
	s.Shuffle(rng.New(42))
	seen := map[float64]bool{}
	for i := 0; i < s.Len(); i++ {
		p := s.At(i)
		if p[1] != p[0]+0.5 {
			t.Fatalf("point %d torn by shuffle: %v", i, p)
		}
		seen[p[0]] = true
	}
	if len(seen) != 8 {
		t.Fatalf("shuffle lost points: %d distinct", len(seen))
	}
}

func BenchmarkFlatScan6D(b *testing.B) {
	s := MustNewSet(6)
	s.Grow(4096)
	row := make([]float64, 6)
	for i := 0; i < 4096; i++ {
		for d := range row {
			row[d] = float64(i + d)
		}
		_ = s.AppendFlat(row)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		data := s.Data()
		for off := 0; off+6 <= len(data); off += 6 {
			acc += data[off]
		}
	}
	_ = acc
}
