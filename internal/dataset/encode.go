package dataset

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Binary encoding for weighted sets — the on-disk form of partial-stage
// summaries, used by stream-clusterer checkpoints (long-running queries
// survive process migration, the property §4 credits to Conquest).
//
// Layout (little-endian):
//
//	magic   [4]byte "SKMW"
//	version uint16
//	dim     uint16
//	count   uint64
//	records count x { weight float64, vec dim x float64 }
//	crc     uint32 (IEEE, over the records section)
const (
	weightedMagic      = "SKMW"
	weightedVersion    = 1
	weightedHeaderSize = 4 + 2 + 2 + 8

	// maxPreallocBytes bounds how much a decoder will reserve on the
	// word of an unverified header count: a corrupt (or hostile, on the
	// distributed wire) count×dim must not allocate before the first
	// record has a chance to fail its read. Larger valid inputs still
	// decode — append growth takes over past the hint.
	maxPreallocBytes = 16 << 20
)

// ErrBadWeightedSet is wrapped by weighted-set decoding errors.
var ErrBadWeightedSet = errors.New("dataset: malformed weighted-set encoding")

// EncodeWeightedSet writes s to w.
func EncodeWeightedSet(w io.Writer, s *WeightedSet) error {
	if s.Dim() > math.MaxUint16 {
		return fmt.Errorf("dataset: dimension %d too large for format", s.Dim())
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(weightedMagic); err != nil {
		return err
	}
	for _, v := range []any{uint16(weightedVersion), uint16(s.Dim()), uint64(s.Len())} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	crc := crc32.NewIEEE()
	out := io.MultiWriter(bw, crc)
	buf := make([]byte, 8)
	writeF := func(x float64) error {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(x))
		_, err := out.Write(buf)
		return err
	}
	for _, p := range s.Points() {
		if err := writeF(p.Weight); err != nil {
			return err
		}
		for _, x := range p.Vec {
			if err := writeF(x); err != nil {
				return err
			}
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// DecodeWeightedSet reads a weighted set from r, validating structure,
// checksum, and weight non-negativity.
func DecodeWeightedSet(r io.Reader) (*WeightedSet, error) {
	br := bufio.NewReader(r)
	head := make([]byte, weightedHeaderSize)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadWeightedSet, err)
	}
	if string(head[:4]) != weightedMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadWeightedSet, head[:4])
	}
	if v := binary.LittleEndian.Uint16(head[4:6]); v != weightedVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadWeightedSet, v)
	}
	dim := int(binary.LittleEndian.Uint16(head[6:8]))
	if dim == 0 {
		return nil, fmt.Errorf("%w: zero dimension", ErrBadWeightedSet)
	}
	count := binary.LittleEndian.Uint64(head[8:16])
	if count > math.MaxInt32 {
		return nil, fmt.Errorf("%w: implausible count %d", ErrBadWeightedSet, count)
	}
	set, err := NewWeightedSet(dim)
	if err != nil {
		return nil, err
	}
	crc := crc32.NewIEEE()
	rec := make([]byte, 8*(dim+1))
	// Decode straight into the set's flat slab: one reserved slab, no
	// per-record vector allocations. The reservation is bounded — the
	// header count is not yet checksum-verified.
	grow := int(count)
	if limit := maxPreallocBytes / (8 * (dim + 1)); grow > limit {
		grow = limit
	}
	set.Grow(grow)
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, fmt.Errorf("%w: truncated at record %d: %v", ErrBadWeightedSet, i, err)
		}
		if _, err := crc.Write(rec); err != nil {
			return nil, err
		}
		weight := math.Float64frombits(binary.LittleEndian.Uint64(rec[0:]))
		if math.IsNaN(weight) || weight < 0 {
			return nil, fmt.Errorf("%w: bad weight at record %d", ErrBadWeightedSet, i)
		}
		for d := 0; d < dim; d++ {
			set.data = append(set.data, math.Float64frombits(binary.LittleEndian.Uint64(rec[8+8*d:])))
		}
		set.weights = append(set.weights, weight)
	}
	var stored uint32
	if err := binary.Read(br, binary.LittleEndian, &stored); err != nil {
		return nil, fmt.Errorf("%w: missing checksum: %v", ErrBadWeightedSet, err)
	}
	if stored != crc.Sum32() {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadWeightedSet)
	}
	return set, nil
}
