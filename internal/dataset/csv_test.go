package dataset

import (
	"bytes"
	"strings"
	"testing"

	"streamkm/internal/vector"
)

func TestReadCSVBasic(t *testing.T) {
	in := "1,2,3\n4,5,6\n"
	s, err := ReadCSV(strings.NewReader(in), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.Dim() != 3 {
		t.Fatalf("set = %dx%d", s.Len(), s.Dim())
	}
	if !s.At(1).Equal(vector.Of(4, 5, 6)) {
		t.Fatalf("row 2 = %v", s.At(1))
	}
}

func TestReadCSVHeaderAndColumns(t *testing.T) {
	in := "id,x,y,label\n1,10,20,a\n2,30,40,b\n"
	s, err := ReadCSV(strings.NewReader(in), CSVOptions{
		HasHeader: true,
		Columns:   []int{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.Dim() != 2 {
		t.Fatalf("set = %dx%d", s.Len(), s.Dim())
	}
	if !s.At(0).Equal(vector.Of(10, 20)) {
		t.Fatalf("row 1 = %v", s.At(0))
	}
}

func TestReadCSVSeparatorAndComment(t *testing.T) {
	in := "# comment\n1;2\n3;4\n"
	s, err := ReadCSV(strings.NewReader(in), CSVOptions{Comma: ';', Comment: '#'})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.Dim() != 2 {
		t.Fatalf("set = %dx%d", s.Len(), s.Dim())
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), CSVOptions{}); err == nil {
		t.Fatal("empty input should error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n"), CSVOptions{}); err == nil {
		t.Fatal("non-numeric field should error")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n"), CSVOptions{Columns: []int{5}}); err == nil {
		t.Fatal("out-of-range column should error")
	}
	if _, err := ReadCSV(strings.NewReader("h1,h2\n"), CSVOptions{HasHeader: true}); err == nil {
		t.Fatal("header-only input should error")
	}
	// ragged rows are a csv-level error
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n"), CSVOptions{}); err == nil {
		t.Fatal("ragged rows should error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := MustNewSet(2)
	for _, p := range []vector.Vector{vector.Of(1.5, -2.25), vector.Of(0.001, 1e9)} {
		if err := s.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(bytes.NewReader(buf.Bytes()), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("round trip len %d", got.Len())
	}
	for i := 0; i < s.Len(); i++ {
		if !got.At(i).Equal(s.At(i)) {
			t.Fatalf("row %d: %v != %v", i, got.At(i), s.At(i))
		}
	}
}
