package dataset

import (
	"bytes"
	"errors"
	"testing"

	"streamkm/internal/vector"
)

func sampleWeighted(t *testing.T) *WeightedSet {
	t.Helper()
	s := MustNewWeightedSet(3)
	for i := 0; i < 17; i++ {
		wp := WeightedPoint{
			Vec:    vector.Of(float64(i), float64(i*i), -float64(i)/3),
			Weight: float64(i) + 0.5,
		}
		if err := s.Add(wp); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestWeightedSetEncodeDecodeRoundTrip(t *testing.T) {
	s := sampleWeighted(t)
	var buf bytes.Buffer
	if err := EncodeWeightedSet(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeWeightedSet(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() || got.Dim() != s.Dim() {
		t.Fatalf("shape %dx%d", got.Len(), got.Dim())
	}
	for i := 0; i < s.Len(); i++ {
		a, b := s.At(i), got.At(i)
		if a.Weight != b.Weight || !a.Vec.Equal(b.Vec) {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestWeightedSetEncodeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeWeightedSet(&buf, MustNewWeightedSet(2)); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeWeightedSet(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.Dim() != 2 {
		t.Fatalf("empty round trip: %dx%d", got.Len(), got.Dim())
	}
}

func TestWeightedSetDecodeCorruption(t *testing.T) {
	s := sampleWeighted(t)
	var buf bytes.Buffer
	if err := EncodeWeightedSet(&buf, s); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("XXXX"), good[4:]...),
		"bad version": func() []byte { b := append([]byte{}, good...); b[4] = 9; return b }(),
		"zero dim":    func() []byte { b := append([]byte{}, good...); b[6], b[7] = 0, 0; return b }(),
		"truncated":   good[:len(good)-6],
		"flipped bit": func() []byte { b := append([]byte{}, good...); b[weightedHeaderSize+9] ^= 0x10; return b }(),
		"no trailer":  good[:len(good)-4],
	}
	for name, data := range cases {
		if _, err := DecodeWeightedSet(bytes.NewReader(data)); !errors.Is(err, ErrBadWeightedSet) {
			t.Errorf("%s: err = %v, want ErrBadWeightedSet", name, err)
		}
	}
}

func TestWeightedSetDecodeRejectsNegativeWeight(t *testing.T) {
	s := MustNewWeightedSet(1)
	if err := s.Add(WeightedPoint{Vec: vector.Of(1), Weight: 2}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeWeightedSet(&buf, s); err != nil {
		t.Fatal(err)
	}
	// Flip the sign bit of the weight (first field of the first record);
	// this also breaks the checksum, so the decoder must error either way.
	bad := buf.Bytes()
	bad[weightedHeaderSize+7] ^= 0x80
	if _, err := DecodeWeightedSet(bytes.NewReader(bad)); err == nil {
		t.Fatal("negative weight should be rejected")
	}
}
