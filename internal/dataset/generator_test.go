package dataset

import (
	"math"
	"testing"

	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

func TestNewMixtureValidation(t *testing.T) {
	good := MixtureComponent{Mean: vector.Of(0, 0), StdDev: vector.Of(1, 1), Weight: 1}
	cases := []struct {
		name  string
		d     int
		comps []MixtureComponent
	}{
		{"zero dim", 0, []MixtureComponent{good}},
		{"no components", 2, nil},
		{"wrong mean dim", 2, []MixtureComponent{{Mean: vector.Of(0), StdDev: vector.Of(1, 1), Weight: 1}}},
		{"wrong sd dim", 2, []MixtureComponent{{Mean: vector.Of(0, 0), StdDev: vector.Of(1), Weight: 1}}},
		{"zero weight", 2, []MixtureComponent{{Mean: vector.Of(0, 0), StdDev: vector.Of(1, 1), Weight: 0}}},
		{"negative sd", 2, []MixtureComponent{{Mean: vector.Of(0, 0), StdDev: vector.Of(-1, 1), Weight: 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewMixture(tc.d, tc.comps); err == nil {
				t.Fatalf("NewMixture should reject %s", tc.name)
			}
		})
	}
	if _, err := NewMixture(2, []MixtureComponent{good}); err != nil {
		t.Fatalf("valid mixture rejected: %v", err)
	}
}

func TestMixtureDoesNotAliasInput(t *testing.T) {
	mean := vector.Of(1, 1)
	m, err := NewMixture(2, []MixtureComponent{{Mean: mean, StdDev: vector.Of(1, 1), Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	mean[0] = 99
	if got := m.Component(0).Mean[0]; got != 1 {
		t.Fatalf("mixture aliases caller's mean: %g", got)
	}
}

func TestMixtureSampleMoments(t *testing.T) {
	m, err := NewMixture(2, []MixtureComponent{
		{Mean: vector.Of(5, -5), StdDev: vector.Of(1, 2), Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	stats := vector.NewRunningStats(2)
	for i := 0; i < 50000; i++ {
		if err := stats.Observe(m.Sample(r)); err != nil {
			t.Fatal(err)
		}
	}
	mean := stats.Mean()
	if math.Abs(mean[0]-5) > 0.05 || math.Abs(mean[1]+5) > 0.1 {
		t.Fatalf("sample mean = %v, want ~[5 -5]", mean)
	}
	sd := stats.StdDev()
	if math.Abs(sd[0]-1) > 0.05 || math.Abs(sd[1]-2) > 0.1 {
		t.Fatalf("sample sd = %v, want ~[1 2]", sd)
	}
}

func TestMixtureComponentProportions(t *testing.T) {
	// Two well-separated components with weights 1 and 3: about 25%/75%.
	m, err := NewMixture(1, []MixtureComponent{
		{Mean: vector.Of(-100), StdDev: vector.Of(1), Weight: 1},
		{Mean: vector.Of(100), StdDev: vector.Of(1), Weight: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	var right int
	const n = 40000
	for i := 0; i < n; i++ {
		if m.Sample(r)[0] > 0 {
			right++
		}
	}
	frac := float64(right) / n
	if math.Abs(frac-0.75) > 0.02 {
		t.Fatalf("heavy-component fraction = %g, want ~0.75", frac)
	}
}

func TestSampleSet(t *testing.T) {
	m, err := NewMixture(3, []MixtureComponent{
		{Mean: vector.Of(0, 0, 0), StdDev: vector.Of(1, 1, 1), Weight: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.SampleSet(rng.New(1), 17)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 17 || s.Dim() != 3 {
		t.Fatalf("SampleSet: len=%d dim=%d", s.Len(), s.Dim())
	}
	if _, err := m.SampleSet(rng.New(1), -1); err == nil {
		t.Fatal("negative n should error")
	}
}

func TestNewCellMixtureValidation(t *testing.T) {
	spec := DefaultCellSpec()
	spec.Dim = 0
	if _, err := NewCellMixture(spec, rng.New(1)); err == nil {
		t.Fatal("zero dim should error")
	}
	spec = DefaultCellSpec()
	spec.Clusters = 0
	if _, err := NewCellMixture(spec, rng.New(1)); err == nil {
		t.Fatal("zero clusters should error")
	}
	spec = DefaultCellSpec()
	spec.NoiseFrac = 1
	if _, err := NewCellMixture(spec, rng.New(1)); err == nil {
		t.Fatal("NoiseFrac=1 should error")
	}
}

func TestNewCellMixtureStructure(t *testing.T) {
	spec := DefaultCellSpec()
	m, err := NewCellMixture(spec, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != spec.Dim {
		t.Fatalf("Dim = %d", m.Dim())
	}
	// clusters + 1 noise component
	if got := m.NumComponents(); got != spec.Clusters+1 {
		t.Fatalf("NumComponents = %d, want %d", got, spec.Clusters+1)
	}
	spec.NoiseFrac = 0
	m2, err := NewCellMixture(spec, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.NumComponents(); got != spec.Clusters {
		t.Fatalf("no-noise NumComponents = %d, want %d", got, spec.Clusters)
	}
}

func TestGenerateCellDeterministic(t *testing.T) {
	spec := DefaultCellSpec()
	spec.Clusters = 5
	a, err := GenerateCell(spec, 200, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCell(spec, 200, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 200 || b.Len() != 200 {
		t.Fatalf("lens = %d, %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if !a.At(i).Equal(b.At(i)) {
			t.Fatalf("same seed produced different cells at point %d", i)
		}
	}
	c, err := GenerateCell(spec, 200, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.At(0).Equal(c.At(0)) && a.At(1).Equal(c.At(1)) {
		t.Fatal("different seeds produced identical-looking cells")
	}
}

func TestGenerateCellHasClusterStructure(t *testing.T) {
	// With large separation and small spread, the within-point nearest
	// neighbor distance should be far below the component separation —
	// i.e. points actually arrive in tight groups.
	spec := DefaultCellSpec()
	spec.Clusters = 8
	spec.Spread = 0.5
	spec.Separation = 50
	spec.NoiseFrac = 0
	s, err := GenerateCell(spec, 400, 11)
	if err != nil {
		t.Fatal(err)
	}
	var sumNN float64
	for i := 0; i < 50; i++ {
		best := math.Inf(1)
		for j := 0; j < s.Len(); j++ {
			if j == i {
				continue
			}
			if d := vector.SquaredDistance(s.At(i), s.At(j)); d < best {
				best = d
			}
		}
		sumNN += math.Sqrt(best)
	}
	avgNN := sumNN / 50
	if avgNN > 10 {
		t.Fatalf("average nearest-neighbor distance %g too large for clustered data", avgNN)
	}
}
