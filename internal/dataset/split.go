package dataset

import (
	"fmt"
	"sort"

	"streamkm/internal/rng"
)

// SplitStrategy selects how a grid cell's points are sliced into the
// partitions consumed by partial k-means. The paper's experiments use
// random slicing ("the data points of a complete cell were randomly
// distributed over 5 or 10 chunks"); its future-work section (§6)
// proposes salami and spatially disjoint slicing, which we implement for
// the A3 ablation.
type SplitStrategy int

const (
	// SplitRandom distributes points uniformly at random across chunks;
	// chunk extents overlap almost completely (>90% in the paper).
	SplitRandom SplitStrategy = iota
	// SplitSalami deals points round-robin in arrival order — thin
	// "salami" slices of the stream.
	SplitSalami
	// SplitSpatial sorts points along the dimension of largest extent
	// and cuts contiguous ranges — spatially (mostly) non-overlapping
	// subcells.
	SplitSpatial
)

// String returns the strategy name used in benchmark tables.
func (s SplitStrategy) String() string {
	switch s {
	case SplitRandom:
		return "random"
	case SplitSalami:
		return "salami"
	case SplitSpatial:
		return "spatial"
	default:
		return fmt.Sprintf("SplitStrategy(%d)", int(s))
	}
}

// Split divides s into p near-equal-sized chunks using the given
// strategy. Each chunk owns a contiguous copy of its points, so partial
// k-means scans each partition sequentially in memory. Every chunk is
// non-empty when p <= s.Len().
func Split(s *Set, p int, strategy SplitStrategy, r *rng.RNG) ([]*Set, error) {
	if p <= 0 {
		return nil, fmt.Errorf("dataset: split count must be positive, got %d", p)
	}
	if s.Len() == 0 {
		return nil, ErrEmptySet
	}
	if p > s.Len() {
		return nil, fmt.Errorf("dataset: cannot split %d points into %d chunks", s.Len(), p)
	}
	order := make([]int, s.Len())
	for i := range order {
		order[i] = i
	}
	switch strategy {
	case SplitRandom:
		if r == nil {
			return nil, fmt.Errorf("dataset: random split requires an RNG")
		}
		r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	case SplitSalami:
		// arrival order as-is; round-robin assignment below
	case SplitSpatial:
		dim, err := widestDimension(s)
		if err != nil {
			return nil, err
		}
		sort.SliceStable(order, func(a, b int) bool {
			return s.At(order[a])[dim] < s.At(order[b])[dim]
		})
	default:
		return nil, fmt.Errorf("dataset: unknown split strategy %d", int(strategy))
	}

	chunks := make([]*Set, p)
	for i := range chunks {
		chunks[i] = &Set{dim: s.dim}
	}
	if strategy == SplitSalami {
		for i, idx := range order {
			c := chunks[i%p]
			c.data = append(c.data, s.At(idx)...)
		}
		return chunks, nil
	}
	// contiguous equal ranges for random (post-shuffle) and spatial
	base := s.Len() / p
	rem := s.Len() % p
	pos := 0
	for i := range chunks {
		size := base
		if i < rem {
			size++
		}
		chunks[i].data = make([]float64, 0, size*s.dim)
		for j := 0; j < size; j++ {
			chunks[i].data = append(chunks[i].data, s.At(order[pos])...)
			pos++
		}
	}
	return chunks, nil
}

// SplitByBudget divides s into the fewest chunks such that each chunk
// holds at most maxPoints points — the engine's memory-budget-driven
// chunking (each partition must fit in physical RAM per §3.2).
func SplitByBudget(s *Set, maxPoints int, strategy SplitStrategy, r *rng.RNG) ([]*Set, error) {
	if maxPoints <= 0 {
		return nil, fmt.Errorf("dataset: chunk budget must be positive, got %d", maxPoints)
	}
	if s.Len() == 0 {
		return nil, ErrEmptySet
	}
	p := (s.Len() + maxPoints - 1) / maxPoints
	return Split(s, p, strategy, r)
}

// widestDimension returns the dimension index with the largest extent.
func widestDimension(s *Set) (int, error) {
	min, max, err := s.Bounds()
	if err != nil {
		return 0, err
	}
	best, bestExtent := 0, max[0]-min[0]
	for d := 1; d < s.Dim(); d++ {
		if e := max[d] - min[d]; e > bestExtent {
			best, bestExtent = d, e
		}
	}
	return best, nil
}
