package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"streamkm/internal/vector"
)

// CSVOptions controls CSV parsing for ReadCSV.
type CSVOptions struct {
	// Comma is the field separator (0 = ',').
	Comma rune
	// HasHeader skips the first record.
	HasHeader bool
	// Columns selects which fields form the point vector, in order;
	// nil means every field.
	Columns []int
	// Comment, when non-zero, marks comment lines.
	Comment rune
}

// ReadCSV loads a point set from CSV, a convenience for adopting the
// library on real data. All selected fields must parse as float64 and
// every row must yield the same dimensionality.
func ReadCSV(r io.Reader, opts CSVOptions) (*Set, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	if opts.Comment != 0 {
		cr.Comment = opts.Comment
	}
	cr.ReuseRecord = true
	var set *Set
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: csv row %d: %w", row+1, err)
		}
		row++
		if opts.HasHeader && row == 1 {
			continue
		}
		cols := opts.Columns
		if cols == nil {
			cols = make([]int, len(rec))
			for i := range cols {
				cols[i] = i
			}
		}
		p := vector.New(len(cols))
		for i, c := range cols {
			if c < 0 || c >= len(rec) {
				return nil, fmt.Errorf("dataset: csv row %d: column %d out of range (%d fields)", row, c, len(rec))
			}
			v, err := strconv.ParseFloat(rec[c], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: csv row %d column %d: %w", row, c, err)
			}
			p[i] = v
		}
		if set == nil {
			var err error
			set, err = NewSet(len(p))
			if err != nil {
				return nil, err
			}
		}
		if err := set.Add(p); err != nil {
			return nil, fmt.Errorf("dataset: csv row %d: %w", row, err)
		}
	}
	if set == nil {
		return nil, fmt.Errorf("dataset: csv contained no data rows")
	}
	return set, nil
}

// WriteCSV serializes a point set as CSV (no header), the inverse of
// ReadCSV for round-tripping results.
func WriteCSV(w io.Writer, s *Set) error {
	cw := csv.NewWriter(w)
	rec := make([]string, s.Dim())
	for _, p := range s.Points() {
		for d, x := range p {
			rec[d] = strconv.FormatFloat(x, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
