package dataset

import (
	"testing"
	"testing/quick"

	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

func lineSet(t *testing.T, n int) *Set {
	t.Helper()
	s := MustNewSet(2)
	for i := 0; i < n; i++ {
		if err := s.Add(vector.Of(float64(i), float64(i%3))); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestSplitValidation(t *testing.T) {
	s := lineSet(t, 10)
	if _, err := Split(s, 0, SplitRandom, rng.New(1)); err == nil {
		t.Fatal("p=0 should error")
	}
	if _, err := Split(s, 11, SplitRandom, rng.New(1)); err == nil {
		t.Fatal("p>N should error")
	}
	if _, err := Split(MustNewSet(2), 1, SplitRandom, rng.New(1)); err == nil {
		t.Fatal("empty set should error")
	}
	if _, err := Split(s, 2, SplitRandom, nil); err == nil {
		t.Fatal("random split without RNG should error")
	}
	if _, err := Split(s, 2, SplitStrategy(99), rng.New(1)); err == nil {
		t.Fatal("unknown strategy should error")
	}
}

func checkPartition(t *testing.T, src *Set, chunks []*Set, p int) {
	t.Helper()
	if len(chunks) != p {
		t.Fatalf("got %d chunks, want %d", len(chunks), p)
	}
	total := 0
	counts := map[float64]int{}
	for _, c := range chunks {
		if c.Len() == 0 {
			t.Fatal("empty chunk")
		}
		total += c.Len()
		for i := 0; i < c.Len(); i++ {
			counts[c.At(i)[0]]++
		}
	}
	if total != src.Len() {
		t.Fatalf("chunks hold %d points, source has %d", total, src.Len())
	}
	for i := 0; i < src.Len(); i++ {
		if counts[src.At(i)[0]] != 1 {
			t.Fatalf("point %d appears %d times", i, counts[src.At(i)[0]])
		}
	}
	// near-equal sizes: max-min <= 1
	min, max := chunks[0].Len(), chunks[0].Len()
	for _, c := range chunks[1:] {
		if c.Len() < min {
			min = c.Len()
		}
		if c.Len() > max {
			max = c.Len()
		}
	}
	if max-min > 1 {
		t.Fatalf("chunk sizes unbalanced: min=%d max=%d", min, max)
	}
}

func TestSplitRandomPartition(t *testing.T) {
	s := lineSet(t, 103)
	chunks, err := Split(s, 5, SplitRandom, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, s, chunks, 5)
}

func TestSplitSalamiPartition(t *testing.T) {
	s := lineSet(t, 101)
	chunks, err := Split(s, 10, SplitSalami, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, s, chunks, 10)
	// salami: chunk j holds points j, j+p, j+2p, ...
	if chunks[0].At(0)[0] != 0 || chunks[0].At(1)[0] != 10 {
		t.Fatalf("salami chunk 0 starts %g, %g", chunks[0].At(0)[0], chunks[0].At(1)[0])
	}
	if chunks[3].At(0)[0] != 3 {
		t.Fatalf("salami chunk 3 starts %g", chunks[3].At(0)[0])
	}
}

func TestSplitSpatialPartition(t *testing.T) {
	s := MustNewSet(2)
	// widest dimension is 0 (range 0..99 vs 0..2)
	for _, i := range rng.New(8).Perm(100) {
		if err := s.Add(vector.Of(float64(i), float64(i%3))); err != nil {
			t.Fatal(err)
		}
	}
	chunks, err := Split(s, 4, SplitSpatial, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, s, chunks, 4)
	// spatial chunks are contiguous, non-overlapping ranges along dim 0
	for ci := 0; ci+1 < len(chunks); ci++ {
		maxHere := chunks[ci].At(0)[0]
		for i := 0; i < chunks[ci].Len(); i++ {
			if v := chunks[ci].At(i)[0]; v > maxHere {
				maxHere = v
			}
		}
		minNext := chunks[ci+1].At(0)[0]
		for i := 0; i < chunks[ci+1].Len(); i++ {
			if v := chunks[ci+1].At(i)[0]; v < minNext {
				minNext = v
			}
		}
		if maxHere > minNext {
			t.Fatalf("spatial chunks %d and %d overlap: max=%g min=%g", ci, ci+1, maxHere, minNext)
		}
	}
}

func TestSplitByBudget(t *testing.T) {
	s := lineSet(t, 100)
	chunks, err := SplitByBudget(s, 30, SplitSalami, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 4 {
		t.Fatalf("budget 30 over 100 points should give 4 chunks, got %d", len(chunks))
	}
	for i, c := range chunks {
		if c.Len() > 30 {
			t.Fatalf("chunk %d has %d points, budget 30", i, c.Len())
		}
	}
	if _, err := SplitByBudget(s, 0, SplitSalami, nil); err == nil {
		t.Fatal("zero budget should error")
	}
	if _, err := SplitByBudget(MustNewSet(2), 10, SplitSalami, nil); err == nil {
		t.Fatal("empty set should error")
	}
	// budget >= N gives one chunk
	one, err := SplitByBudget(s, 1000, SplitSalami, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].Len() != 100 {
		t.Fatalf("oversized budget: %d chunks", len(one))
	}
}

func TestSplitStrategyString(t *testing.T) {
	if SplitRandom.String() != "random" || SplitSalami.String() != "salami" || SplitSpatial.String() != "spatial" {
		t.Fatal("strategy names wrong")
	}
	if SplitStrategy(42).String() == "" {
		t.Fatal("unknown strategy should still stringify")
	}
}

// Property: for any n >= p >= 1 and any strategy, Split partitions the set.
func TestSplitIsPartitionProperty(t *testing.T) {
	f := func(nRaw, pRaw uint8, stratRaw uint8) bool {
		n := int(nRaw%200) + 1
		p := int(pRaw)%n + 1
		strat := SplitStrategy(stratRaw % 3)
		s := MustNewSet(1)
		for i := 0; i < n; i++ {
			if s.Add(vector.Of(float64(i))) != nil {
				return false
			}
		}
		chunks, err := Split(s, p, strat, rng.New(uint64(nRaw)+1))
		if err != nil {
			return false
		}
		total := 0
		seen := map[float64]bool{}
		for _, c := range chunks {
			total += c.Len()
			for i := 0; i < c.Len(); i++ {
				v := c.At(i)[0]
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		return total == n && len(chunks) == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
