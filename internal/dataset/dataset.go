// Package dataset provides the data substrate of the reproduction: point
// and weighted-point containers, the synthetic MISR-like Gaussian-mixture
// generator standing in for the paper's R-recreated grid cells, and the
// partition ("slicing") strategies the paper uses and proposes.
//
// The paper clusters 1°x1° grid cells of 6-dimensional satellite
// measurements. The original MISR HDF swaths are proprietary-scale NASA
// data; per DESIGN.md we substitute a Gaussian mixture per cell, which the
// paper itself approximated when it "used the R statistical package to
// recreate the files with the same distribution".
package dataset

import (
	"errors"
	"fmt"

	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

// Point is one D-dimensional observation.
type Point = vector.Vector

// WeightedPoint is a point with an attached weight. Partial k-means emits
// centroids weighted by their assigned-point counts; merge k-means
// consumes them.
type WeightedPoint struct {
	Vec    vector.Vector
	Weight float64
}

// Clone returns a deep copy of the weighted point.
func (w WeightedPoint) Clone() WeightedPoint {
	return WeightedPoint{Vec: w.Vec.Clone(), Weight: w.Weight}
}

// Set is an in-memory collection of points of a single dimensionality.
// The zero value is unusable; use NewSet.
type Set struct {
	dim    int
	points []Point
}

// NewSet returns an empty set for d-dimensional points. d must be
// positive.
func NewSet(d int) (*Set, error) {
	if d <= 0 {
		return nil, fmt.Errorf("dataset: dimension must be positive, got %d", d)
	}
	return &Set{dim: d}, nil
}

// MustNewSet is NewSet that panics on error, for tests and constants.
func MustNewSet(d int) *Set {
	s, err := NewSet(d)
	if err != nil {
		panic(err)
	}
	return s
}

// FromPoints builds a set from existing points, validating dimensions.
func FromPoints(d int, pts []Point) (*Set, error) {
	s, err := NewSet(d)
	if err != nil {
		return nil, err
	}
	for _, p := range pts {
		if err := s.Add(p); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Dim returns the dimensionality of the set.
func (s *Set) Dim() int { return s.dim }

// Len returns the number of points.
func (s *Set) Len() int { return len(s.points) }

// Add appends a point; it rejects dimension mismatches.
func (s *Set) Add(p Point) error {
	if len(p) != s.dim {
		return fmt.Errorf("dataset: point dim %d != set dim %d", len(p), s.dim)
	}
	s.points = append(s.points, p)
	return nil
}

// At returns the i-th point (not a copy; callers must not mutate).
func (s *Set) At(i int) Point { return s.points[i] }

// Points returns the backing slice (not a copy; callers must not mutate).
func (s *Set) Points() []Point { return s.points }

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{dim: s.dim, points: make([]Point, len(s.points))}
	for i, p := range s.points {
		c.points[i] = p.Clone()
	}
	return c
}

// Shuffle randomizes point order in place. The paper assumes points of a
// grid cell "arrive sequentially, and in random order".
func (s *Set) Shuffle(r *rng.RNG) {
	r.Shuffle(len(s.points), func(i, j int) {
		s.points[i], s.points[j] = s.points[j], s.points[i]
	})
}

// ErrEmptySet is returned by operations that need at least one point.
var ErrEmptySet = errors.New("dataset: empty set")

// Bounds returns the bounding box of the set.
func (s *Set) Bounds() (min, max vector.Vector, err error) {
	if s.Len() == 0 {
		return nil, nil, ErrEmptySet
	}
	box := vector.NewBoundingBox(s.dim)
	for _, p := range s.points {
		if err := box.Observe(p); err != nil {
			return nil, nil, err
		}
	}
	min, err = box.Min()
	if err != nil {
		return nil, nil, err
	}
	max, err = box.Max()
	if err != nil {
		return nil, nil, err
	}
	return min, max, nil
}

// WeightedSet is a collection of weighted points of one dimensionality,
// the unit of exchange between the partial and merge operators.
type WeightedSet struct {
	dim    int
	points []WeightedPoint
}

// NewWeightedSet returns an empty weighted set for d dimensions.
func NewWeightedSet(d int) (*WeightedSet, error) {
	if d <= 0 {
		return nil, fmt.Errorf("dataset: dimension must be positive, got %d", d)
	}
	return &WeightedSet{dim: d}, nil
}

// MustNewWeightedSet panics on error; for tests.
func MustNewWeightedSet(d int) *WeightedSet {
	s, err := NewWeightedSet(d)
	if err != nil {
		panic(err)
	}
	return s
}

// Dim returns the dimensionality.
func (s *WeightedSet) Dim() int { return s.dim }

// Len returns the number of weighted points.
func (s *WeightedSet) Len() int { return len(s.points) }

// Add appends a weighted point, validating dimension and weight.
func (s *WeightedSet) Add(p WeightedPoint) error {
	if len(p.Vec) != s.dim {
		return fmt.Errorf("dataset: point dim %d != set dim %d", len(p.Vec), s.dim)
	}
	if p.Weight < 0 {
		return fmt.Errorf("dataset: negative weight %g", p.Weight)
	}
	s.points = append(s.points, p)
	return nil
}

// At returns the i-th weighted point.
func (s *WeightedSet) At(i int) WeightedPoint { return s.points[i] }

// Points returns the backing slice (not a copy).
func (s *WeightedSet) Points() []WeightedPoint { return s.points }

// TotalWeight returns the sum of all weights. For partial k-means output
// this equals the number of points in the source partition.
func (s *WeightedSet) TotalWeight() float64 {
	var t float64
	for _, p := range s.points {
		t += p.Weight
	}
	return t
}

// Append adds all points of o into s.
func (s *WeightedSet) Append(o *WeightedSet) error {
	if o.dim != s.dim {
		return fmt.Errorf("dataset: cannot append dim %d into dim %d", o.dim, s.dim)
	}
	s.points = append(s.points, o.points...)
	return nil
}

// Unweighted converts a plain set into a weighted set with unit weights,
// so serial k-means and merge k-means share one weighted implementation.
func Unweighted(s *Set) *WeightedSet {
	w := &WeightedSet{dim: s.dim, points: make([]WeightedPoint, s.Len())}
	for i, p := range s.points {
		w.points[i] = WeightedPoint{Vec: p, Weight: 1}
	}
	return w
}
