// Package dataset provides the data substrate of the reproduction: point
// and weighted-point containers, the synthetic MISR-like Gaussian-mixture
// generator standing in for the paper's R-recreated grid cells, and the
// partition ("slicing") strategies the paper uses and proposes.
//
// The paper clusters 1°x1° grid cells of 6-dimensional satellite
// measurements. The original MISR HDF swaths are proprietary-scale NASA
// data; per DESIGN.md we substitute a Gaussian mixture per cell, which the
// paper itself approximated when it "used the R statistical package to
// recreate the files with the same distribution".
//
// Memory layout: both containers store their points in a single strided
// []float64 slab (point i occupies data[i*dim:(i+1)*dim]); WeightedSet
// keeps weights in a parallel column. At returns zero-copy views into the
// slab — see docs/ARCHITECTURE.md "Memory layout & hot path" for the
// aliasing rules.
package dataset

import (
	"errors"
	"fmt"

	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

// Point is one D-dimensional observation.
type Point = vector.Vector

// WeightedPoint is a point with an attached weight. Partial k-means emits
// centroids weighted by their assigned-point counts; merge k-means
// consumes them.
type WeightedPoint struct {
	Vec    vector.Vector
	Weight float64
}

// Clone returns a deep copy of the weighted point.
func (w WeightedPoint) Clone() WeightedPoint {
	return WeightedPoint{Vec: w.Vec.Clone(), Weight: w.Weight}
}

// Set is an in-memory collection of points of a single dimensionality,
// stored contiguously. Adding a point copies its components into the flat
// slab. The zero value is unusable; use NewSet.
type Set struct {
	dim  int
	data []float64 // strided point storage, Len()*dim long
}

// NewSet returns an empty set for d-dimensional points. d must be
// positive.
func NewSet(d int) (*Set, error) {
	if d <= 0 {
		return nil, fmt.Errorf("dataset: dimension must be positive, got %d", d)
	}
	return &Set{dim: d}, nil
}

// MustNewSet is NewSet that panics on error, for tests and constants.
func MustNewSet(d int) *Set {
	s, err := NewSet(d)
	if err != nil {
		panic(err)
	}
	return s
}

// FromPoints builds a set from existing points, validating dimensions.
// Point contents are copied; the set does not alias the inputs.
func FromPoints(d int, pts []Point) (*Set, error) {
	s, err := NewSet(d)
	if err != nil {
		return nil, err
	}
	s.Grow(len(pts))
	for _, p := range pts {
		if err := s.Add(p); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Dim returns the dimensionality of the set.
func (s *Set) Dim() int { return s.dim }

// Len returns the number of points.
func (s *Set) Len() int { return len(s.data) / s.dim }

// Grow reserves capacity for n additional points.
func (s *Set) Grow(n int) {
	need := len(s.data) + n*s.dim
	if cap(s.data) >= need {
		return
	}
	grown := make([]float64, len(s.data), need)
	copy(grown, s.data)
	s.data = grown
}

// Add appends a copy of p; it rejects dimension mismatches.
func (s *Set) Add(p Point) error {
	if len(p) != s.dim {
		return fmt.Errorf("dataset: point dim %d != set dim %d", len(p), s.dim)
	}
	s.data = append(s.data, p...)
	return nil
}

// AppendFlat bulk-appends points already laid out as consecutive
// dim-length runs of vals — the zero-conversion path for decoders that
// fill a flat buffer directly.
func (s *Set) AppendFlat(vals []float64) error {
	if len(vals)%s.dim != 0 {
		return fmt.Errorf("dataset: flat append of %d values is not a multiple of dim %d", len(vals), s.dim)
	}
	s.data = append(s.data, vals...)
	return nil
}

// At returns the i-th point as a zero-copy view into the flat slab.
// Callers must not mutate it, and the view's contents change if the set
// is shuffled (views are positional).
func (s *Set) At(i int) Point {
	off := i * s.dim
	return Point(s.data[off : off+s.dim : off+s.dim])
}

// Data returns the backing flat slab (Len()*Dim() values, point i at
// [i*dim:(i+1)*dim]). Read-only for callers; this is the hot-path input
// of the flat Lloyd kernels.
func (s *Set) Data() []float64 { return s.data }

// Points materializes per-point views into the flat slab. The returned
// slice is fresh on every call, but the views alias the set's storage:
// read-only, and stale after the set is appended to.
func (s *Set) Points() []Point {
	n := s.Len()
	views := make([]Point, n)
	for i := range views {
		views[i] = s.At(i)
	}
	return views
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{dim: s.dim, data: make([]float64, len(s.data))}
	copy(c.data, s.data)
	return c
}

// Shuffle randomizes point order in place. The paper assumes points of a
// grid cell "arrive sequentially, and in random order". The permutation
// consumes the RNG exactly as rng.Shuffle over Len() elements.
func (s *Set) Shuffle(r *rng.RNG) {
	tmp := make([]float64, s.dim)
	r.Shuffle(s.Len(), func(i, j int) {
		a := s.data[i*s.dim : (i+1)*s.dim]
		b := s.data[j*s.dim : (j+1)*s.dim]
		copy(tmp, a)
		copy(a, b)
		copy(b, tmp)
	})
}

// Reset truncates the set to zero points, keeping the allocated slab so
// a reused buffer (the windowed clusterer's chunk buffer) stops
// allocating once it has warmed up.
func (s *Set) Reset() { s.data = s.data[:0] }

// ErrEmptySet is returned by operations that need at least one point.
var ErrEmptySet = errors.New("dataset: empty set")

// Bounds returns the bounding box of the set.
func (s *Set) Bounds() (min, max vector.Vector, err error) {
	if s.Len() == 0 {
		return nil, nil, ErrEmptySet
	}
	box := vector.NewBoundingBox(s.dim)
	for i, n := 0, s.Len(); i < n; i++ {
		if err := box.Observe(s.At(i)); err != nil {
			return nil, nil, err
		}
	}
	min, err = box.Min()
	if err != nil {
		return nil, nil, err
	}
	max, err = box.Max()
	if err != nil {
		return nil, nil, err
	}
	return min, max, nil
}

// WeightedSet is a collection of weighted points of one dimensionality,
// the unit of exchange between the partial and merge operators. Points
// live in a strided flat slab with a parallel weight column.
type WeightedSet struct {
	dim     int
	data    []float64 // strided point storage, Len()*dim long
	weights []float64 // weight column, Len() long
}

// NewWeightedSet returns an empty weighted set for d dimensions.
func NewWeightedSet(d int) (*WeightedSet, error) {
	if d <= 0 {
		return nil, fmt.Errorf("dataset: dimension must be positive, got %d", d)
	}
	return &WeightedSet{dim: d}, nil
}

// MustNewWeightedSet panics on error; for tests.
func MustNewWeightedSet(d int) *WeightedSet {
	s, err := NewWeightedSet(d)
	if err != nil {
		panic(err)
	}
	return s
}

// Dim returns the dimensionality.
func (s *WeightedSet) Dim() int { return s.dim }

// Len returns the number of weighted points.
func (s *WeightedSet) Len() int { return len(s.weights) }

// Grow reserves capacity for n additional weighted points.
func (s *WeightedSet) Grow(n int) {
	if need := len(s.data) + n*s.dim; cap(s.data) < need {
		grown := make([]float64, len(s.data), need)
		copy(grown, s.data)
		s.data = grown
	}
	if need := len(s.weights) + n; cap(s.weights) < need {
		grown := make([]float64, len(s.weights), need)
		copy(grown, s.weights)
		s.weights = grown
	}
}

// Add appends a copy of the weighted point, validating dimension and
// weight.
func (s *WeightedSet) Add(p WeightedPoint) error {
	if len(p.Vec) != s.dim {
		return fmt.Errorf("dataset: point dim %d != set dim %d", len(p.Vec), s.dim)
	}
	if p.Weight < 0 {
		return fmt.Errorf("dataset: negative weight %g", p.Weight)
	}
	s.data = append(s.data, p.Vec...)
	s.weights = append(s.weights, p.Weight)
	return nil
}

// AppendFlat bulk-appends points laid out as consecutive dim-length runs
// of vals with one weight per point — the decoder fast path.
func (s *WeightedSet) AppendFlat(vals []float64, weights []float64) error {
	if len(vals) != len(weights)*s.dim {
		return fmt.Errorf("dataset: flat append of %d values does not match %d weights at dim %d",
			len(vals), len(weights), s.dim)
	}
	for i, w := range weights {
		if w < 0 {
			return fmt.Errorf("dataset: negative weight %g at index %d", w, i)
		}
	}
	s.data = append(s.data, vals...)
	s.weights = append(s.weights, weights...)
	return nil
}

// At returns the i-th weighted point; its Vec is a zero-copy view into
// the flat slab (read-only for callers).
func (s *WeightedSet) At(i int) WeightedPoint {
	return WeightedPoint{Vec: s.VecAt(i), Weight: s.weights[i]}
}

// VecAt returns the i-th point vector as a zero-copy view.
func (s *WeightedSet) VecAt(i int) vector.Vector {
	off := i * s.dim
	return vector.Vector(s.data[off : off+s.dim : off+s.dim])
}

// WeightAt returns the i-th weight.
func (s *WeightedSet) WeightAt(i int) float64 { return s.weights[i] }

// Data returns the backing flat point slab (read-only for callers).
func (s *WeightedSet) Data() []float64 { return s.data }

// Weights returns the backing weight column (read-only for callers).
func (s *WeightedSet) Weights() []float64 { return s.weights }

// Points materializes per-point views into the flat storage. Fresh slice
// per call; Vec fields alias the set's slab (read-only, stale after
// append).
func (s *WeightedSet) Points() []WeightedPoint {
	views := make([]WeightedPoint, s.Len())
	for i := range views {
		views[i] = s.At(i)
	}
	return views
}

// TotalWeight returns the sum of all weights. For partial k-means output
// this equals the number of points in the source partition.
func (s *WeightedSet) TotalWeight() float64 {
	var t float64
	for _, w := range s.weights {
		t += w
	}
	return t
}

// Append adds copies of all points of o into s.
func (s *WeightedSet) Append(o *WeightedSet) error {
	if o.dim != s.dim {
		return fmt.Errorf("dataset: cannot append dim %d into dim %d", o.dim, s.dim)
	}
	s.data = append(s.data, o.data...)
	s.weights = append(s.weights, o.weights...)
	return nil
}

// AppendUnweighted adds copies of all points of o with unit weight —
// the reuse-friendly form of Unweighted for callers that pool a plain
// set into an existing weighted buffer without a fresh allocation.
func (s *WeightedSet) AppendUnweighted(o *Set) error {
	if o.dim != s.dim {
		return fmt.Errorf("dataset: cannot append dim %d into dim %d", o.dim, s.dim)
	}
	s.data = append(s.data, o.data...)
	for i, n := 0, o.Len(); i < n; i++ {
		s.weights = append(s.weights, 1)
	}
	return nil
}

// Truncate drops every point past index n, keeping capacity — the
// inverse of AppendUnweighted for buffers that carry a transient tail.
func (s *WeightedSet) Truncate(n int) {
	s.data = s.data[:n*s.dim]
	s.weights = s.weights[:n]
}

// Reset truncates the weighted set to zero points, keeping capacity.
func (s *WeightedSet) Reset() { s.Truncate(0) }

// Unweighted converts a plain set into a weighted set with unit weights,
// so serial k-means and merge k-means share one weighted implementation.
// The point slab is copied, so the two sets do not alias.
func Unweighted(s *Set) *WeightedSet {
	w := &WeightedSet{
		dim:     s.dim,
		data:    make([]float64, len(s.data)),
		weights: make([]float64, s.Len()),
	}
	copy(w.data, s.data)
	for i := range w.weights {
		w.weights[i] = 1
	}
	return w
}
