package grid

import (
	"math"
	"testing"

	"streamkm/internal/rng"
)

func TestSwathSpecValidation(t *testing.T) {
	base := DefaultSwathSpec()
	mutations := []func(*SwathSpec){
		func(s *SwathSpec) { s.SwathWidthDeg = 0 },
		func(s *SwathSpec) { s.Orbits = 0 },
		func(s *SwathSpec) { s.PointsPerOrbit = 0 },
		func(s *SwathSpec) { s.Dim = 0 },
		func(s *SwathSpec) { s.MaxLatDeg = 0 },
		func(s *SwathSpec) { s.MaxLatDeg = 91 },
	}
	for i, mut := range mutations {
		spec := base
		mut(&spec)
		if _, err := SimulateSwaths(spec, GeoGradientModel{Dim: spec.Dim, Noise: 1, Scale: 5}, 1); err == nil {
			t.Errorf("mutation %d should be rejected", i)
		}
	}
	if _, err := SimulateSwaths(base, nil, 1); err == nil {
		t.Fatal("nil model should error")
	}
}

func TestSimulateSwathsShape(t *testing.T) {
	spec := DefaultSwathSpec()
	spec.Orbits = 4
	spec.PointsPerOrbit = 500
	pts, err := SimulateSwaths(spec, GeoGradientModel{Dim: 6, Noise: 0.5, Scale: 5}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2000 {
		t.Fatalf("got %d points", len(pts))
	}
	for i, p := range pts {
		if p.Lat < -90 || p.Lat > 90 || p.Lon < -180 || p.Lon > 180 {
			t.Fatalf("point %d out of range: (%g, %g)", i, p.Lat, p.Lon)
		}
		if len(p.Attrs) != 6 {
			t.Fatalf("point %d has %d attrs", i, len(p.Attrs))
		}
	}
}

func TestSwathsAreStripes(t *testing.T) {
	// A single orbit's points should stay inside a narrow longitude band
	// (base track ± shift-during-orbit ± swath width), not cover the
	// globe.
	spec := DefaultSwathSpec()
	spec.Orbits = 1
	spec.PointsPerOrbit = 1000
	pts, err := SimulateSwaths(spec, GeoGradientModel{Dim: 6, Noise: 0.1, Scale: 1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Width of longitudes covered in one orbit is bounded by westward
	// shift + swath width, far below 360.
	minLon, maxLon := 360.0, -360.0
	for _, p := range pts {
		if p.Lon < minLon {
			minLon = p.Lon
		}
		if p.Lon > maxLon {
			maxLon = p.Lon
		}
	}
	if maxLon-minLon > spec.WestwardShiftDeg+spec.SwathWidthDeg+1 {
		t.Fatalf("one orbit spans %g degrees of longitude", maxLon-minLon)
	}
}

func TestMultipleOrbitsSpreadCoverage(t *testing.T) {
	// 16 orbits is a full coverage cycle (360 / 24.7 ≈ 14.6), so late
	// orbits interleave between early tracks and revisit their cells.
	spec := DefaultSwathSpec()
	spec.Orbits = 16
	spec.PointsPerOrbit = 800
	pts, err := SimulateSwaths(spec, GeoGradientModel{Dim: 6, Noise: 0.1, Scale: 1}, 9)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := Bucketize(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) < 100 {
		t.Fatalf("12 orbits filled only %d cells", len(cells))
	}
	// Points of one cell must be scattered across the acquisition
	// stream, not contiguous (the §3 "little control over order" regime):
	// find a cell with >= 2 points and check index spread.
	posByCell := map[CellKey][]int{}
	for i, p := range pts {
		k, err := p.Cell()
		if err != nil {
			t.Fatal(err)
		}
		posByCell[k] = append(posByCell[k], i)
	}
	scattered := false
	for _, idxs := range posByCell {
		if len(idxs) >= 2 && idxs[len(idxs)-1]-idxs[0] > spec.PointsPerOrbit {
			scattered = true
			break
		}
	}
	if !scattered {
		t.Fatal("no cell's points span multiple orbits")
	}
}

func TestGeoGradientModelSpatialCorrelation(t *testing.T) {
	m := GeoGradientModel{Dim: 4, Noise: 0.01, Scale: 10}
	r := rng.New(3)
	a := m.Attributes(10, 20, r)
	b := m.Attributes(10.01, 20.01, r) // nearby
	c := m.Attributes(-60, 150, r)     // far away
	dNear := 0.0
	dFar := 0.0
	for d := 0; d < 4; d++ {
		dNear += (a[d] - b[d]) * (a[d] - b[d])
		dFar += (a[d] - c[d]) * (a[d] - c[d])
	}
	if dNear >= dFar {
		t.Fatalf("nearby points (%g) not more similar than far points (%g)", dNear, dFar)
	}
}

func TestBucketizeToSets(t *testing.T) {
	pts := []GeoPoint{
		{Lat: 0.5, Lon: 0.5, Attrs: []float64{1, 2}},
		{Lat: 0.6, Lon: 0.4, Attrs: []float64{3, 4}},
	}
	cells, err := Bucketize(pts)
	if err != nil {
		t.Fatal(err)
	}
	sets, err := BucketizeToSets(cells)
	if err != nil {
		t.Fatal(err)
	}
	s := sets[CellKey{0, 0}]
	if s == nil || s.Len() != 2 || s.Dim() != 2 {
		t.Fatalf("set = %+v", s)
	}
}

func TestNormalizeLon(t *testing.T) {
	cases := map[float64]float64{
		0:    0,
		180:  -180,
		-180: -180,
		190:  -170,
		-190: 170,
		360:  0,
		540:  -180,
	}
	for in, want := range cases {
		if got := normalizeLon(in); math.Abs(got-want) > 1e-9 {
			t.Errorf("normalizeLon(%g) = %g, want %g", in, got, want)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	spec := DefaultSwathSpec()
	spec.Orbits = 2
	spec.PointsPerOrbit = 100
	m := GeoGradientModel{Dim: 6, Noise: 1, Scale: 5}
	a, err := SimulateSwaths(spec, m, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateSwaths(spec, m, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Lat != b[i].Lat || a[i].Lon != b[i].Lon || !a[i].Attrs.Equal(b[i].Attrs) {
			t.Fatalf("simulation not deterministic at point %d", i)
		}
	}
}
