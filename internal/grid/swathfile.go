package grid

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// Swath file format — the stand-in for the paper's "complex,
// semi-structured files" holding stripe-wise instrument data (§3.1).
// Records appear in acquisition order, so one grid cell's points are
// scattered across files. Layout (little-endian):
//
//	magic   [4]byte "SKMS"
//	version uint16
//	dim     uint16
//	count   uint64
//	records count x { lat float64, lon float64, attrs dim x float64 }
const (
	swathMagic      = "SKMS"
	swathVersion    = 1
	swathHeaderSize = 4 + 2 + 2 + 8
)

// ErrBadSwath is wrapped by all swath-format corruption errors.
var ErrBadSwath = errors.New("grid: malformed swath file")

// WriteSwath serializes measurements to w in acquisition order.
func WriteSwath(w io.Writer, dim int, points []GeoPoint) error {
	if dim <= 0 || dim > math.MaxUint16 {
		return fmt.Errorf("grid: invalid swath dim %d", dim)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(swathMagic); err != nil {
		return err
	}
	for _, v := range []any{uint16(swathVersion), uint16(dim), uint64(len(points))} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	buf := make([]byte, 8)
	writeF := func(x float64) error {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(x))
		_, err := bw.Write(buf)
		return err
	}
	for i, p := range points {
		if len(p.Attrs) != dim {
			return fmt.Errorf("grid: point %d has %d attrs, want %d", i, len(p.Attrs), dim)
		}
		if err := writeF(p.Lat); err != nil {
			return err
		}
		if err := writeF(p.Lon); err != nil {
			return err
		}
		for _, x := range p.Attrs {
			if err := writeF(x); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// WriteSwathFile writes a swath file to path.
func WriteSwathFile(path string, dim int, points []GeoPoint) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return WriteSwath(f, dim, points)
}

// SwathReader streams a swath file record by record — the one-scan
// access pattern the stream model mandates.
type SwathReader struct {
	r     *bufio.Reader
	dim   int
	count int
	read  int
	buf   []byte
}

// NewSwathReader parses the header.
func NewSwathReader(r io.Reader) (*SwathReader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, swathHeaderSize)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadSwath, err)
	}
	if string(head[:4]) != swathMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadSwath, head[:4])
	}
	if v := binary.LittleEndian.Uint16(head[4:6]); v != swathVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadSwath, v)
	}
	dim := int(binary.LittleEndian.Uint16(head[6:8]))
	if dim == 0 {
		return nil, fmt.Errorf("%w: zero dimension", ErrBadSwath)
	}
	count := binary.LittleEndian.Uint64(head[8:16])
	if count > math.MaxInt32 {
		return nil, fmt.Errorf("%w: implausible count %d", ErrBadSwath, count)
	}
	return &SwathReader{
		r:     br,
		dim:   dim,
		count: int(count),
		buf:   make([]byte, 8*(dim+2)),
	}, nil
}

// Dim returns the attribute dimensionality.
func (s *SwathReader) Dim() int { return s.dim }

// Count returns the record count from the header.
func (s *SwathReader) Count() int { return s.count }

// Read returns how many records have been returned so far.
func (s *SwathReader) Read() int { return s.read }

// Next returns the next measurement, or ok=false at end of file.
func (s *SwathReader) Next() (GeoPoint, bool, error) {
	if s.read >= s.count {
		return GeoPoint{}, false, nil
	}
	if _, err := io.ReadFull(s.r, s.buf); err != nil {
		return GeoPoint{}, false, fmt.Errorf("%w: truncated at record %d: %v", ErrBadSwath, s.read, err)
	}
	s.read++
	p := GeoPoint{
		Lat:   math.Float64frombits(binary.LittleEndian.Uint64(s.buf[0:])),
		Lon:   math.Float64frombits(binary.LittleEndian.Uint64(s.buf[8:])),
		Attrs: make([]float64, s.dim),
	}
	for d := 0; d < s.dim; d++ {
		p.Attrs[d] = math.Float64frombits(binary.LittleEndian.Uint64(s.buf[16+8*d:]))
	}
	return p, true, nil
}
