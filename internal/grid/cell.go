// Package grid provides the temporal-spatial substrate of the paper's
// workload: 1°x1° grid cells addressed by integer degree keys, a binary
// grid-bucket file format for the pre-sorted cell data the experiments
// read ("sorted into one degree latitude and one degree longitude grid
// buckets that were saved to disk as binary files", §3.1), and a swath
// simulator that mimics how a satellite instrument such as MISR covers
// the earth in stripes (Fig. 1).
package grid

import (
	"fmt"
	"math"

	"streamkm/internal/vector"
)

// CellKey identifies a 1°x1° grid cell by the integer degrees of its
// south-west corner: Lat in [-90, 89], Lon in [-180, 179].
type CellKey struct {
	Lat int
	Lon int
}

// Valid reports whether the key addresses a real cell.
func (k CellKey) Valid() bool {
	return k.Lat >= -90 && k.Lat <= 89 && k.Lon >= -180 && k.Lon <= 179
}

// String formats the key as e.g. "N34E118" / "S01W090".
func (k CellKey) String() string {
	ns, lat := "N", k.Lat
	if lat < 0 {
		ns, lat = "S", -lat
	}
	ew, lon := "E", k.Lon
	if lon < 0 {
		ew, lon = "W", -lon
	}
	return fmt.Sprintf("%s%02d%s%03d", ns, lat, ew, lon)
}

// CellOf returns the cell containing the coordinate. Latitude 90 and
// longitude 180 fold into the north/east-most cells so every point on
// the sphere maps to a valid key.
func CellOf(lat, lon float64) (CellKey, error) {
	// Range checks alone would let NaN through (every comparison with
	// NaN is false) and int(NaN) is a platform-defined garbage key.
	if math.IsNaN(lat) || math.IsInf(lat, 0) || math.IsNaN(lon) || math.IsInf(lon, 0) {
		return CellKey{}, fmt.Errorf("grid: non-finite coordinate (%g, %g)", lat, lon)
	}
	if lat < -90 || lat > 90 {
		return CellKey{}, fmt.Errorf("grid: latitude %g out of [-90, 90]", lat)
	}
	if lon < -180 || lon > 180 {
		return CellKey{}, fmt.Errorf("grid: longitude %g out of [-180, 180]", lon)
	}
	k := CellKey{Lat: floorInt(lat), Lon: floorInt(lon)}
	if k.Lat > 89 {
		k.Lat = 89
	}
	if k.Lon > 179 {
		k.Lon = 179
	}
	return k, nil
}

func floorInt(x float64) int {
	i := int(x)
	if x < 0 && float64(i) != x {
		i--
	}
	return i
}

// GeoPoint is one geolocated measurement: a coordinate plus the
// D-dimensional attribute vector that gets clustered.
type GeoPoint struct {
	Lat   float64
	Lon   float64
	Attrs vector.Vector
}

// Cell returns the grid cell containing the point.
func (p GeoPoint) Cell() (CellKey, error) { return CellOf(p.Lat, p.Lon) }

// Bucketize groups geolocated points by grid cell — the offline sort the
// paper assumes has already happened before clustering. It rejects
// points with invalid coordinates or inconsistent attribute dimensions.
func Bucketize(points []GeoPoint) (map[CellKey][]GeoPoint, error) {
	out := make(map[CellKey][]GeoPoint)
	dim := -1
	for i, p := range points {
		k, err := p.Cell()
		if err != nil {
			return nil, fmt.Errorf("grid: point %d: %w", i, err)
		}
		if dim == -1 {
			dim = len(p.Attrs)
		} else if len(p.Attrs) != dim {
			return nil, fmt.Errorf("grid: point %d has %d attributes, want %d", i, len(p.Attrs), dim)
		}
		out[k] = append(out[k], p)
	}
	return out, nil
}
