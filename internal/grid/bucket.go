package grid

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"streamkm/internal/dataset"
	"streamkm/internal/vector"
)

// Bucket file format (little-endian):
//
//	magic   [4]byte  "SKMB"
//	version uint16   (1 or 2)
//	dim     uint16   attribute dimensionality
//	lat     int16    cell south-west latitude
//	lon     int16    cell south-west longitude
//	count   uint64   number of points
//	record  count x { dim float64 attribute values,
//	                  crc uint32 (version 2 only) }
//	crc     uint32   CRC-32 (IEEE) of the attribute values
//
// Version 2 adds a CRC-32 after every record so corruption is detected
// at the damaged point rather than only at the file trailer, which is
// what makes salvage possible: every record before the damage has
// already proven itself. The trailing whole-file checksum covers the
// attribute values only (not the per-record CRCs) in both versions.
//
// The format stores attributes only; the cell coordinates live in the
// header, matching the paper's pre-bucketed binary files.
const (
	bucketMagic     = "SKMB"
	bucketVersion   = 2
	bucketVersionV1 = 1
	headerSize      = 4 + 2 + 2 + 2 + 2 + 8

	// maxPreallocBytes bounds the slab reserved on the word of a header
	// count that no checksum has confirmed yet (the trailer CRC comes
	// last). A corrupt or hostile count must fail on its first short
	// read, not allocate count×dim×8 bytes up front.
	maxPreallocBytes = 16 << 20
)

// ErrBadBucket is wrapped by all bucket-format corruption errors.
var ErrBadBucket = errors.New("grid: malformed bucket file")

// ErrTruncated marks a bucket whose body ends before the header's
// promised point count (or before the trailing checksum). It wraps
// ErrBadBucket, so existing errors.Is(err, ErrBadBucket) checks keep
// firing; salvage-aware callers can test for ErrTruncated specifically
// and keep the valid prefix (see SalvageBucket).
var ErrTruncated = fmt.Errorf("%w (truncated)", ErrBadBucket)

// WriteBucket serializes a cell's points to w in the current (v2)
// format, with a CRC-32 after every record.
func WriteBucket(w io.Writer, key CellKey, points *dataset.Set) error {
	return writeBucket(w, key, points, bucketVersion)
}

// WriteBucketV1 serializes a cell in the legacy v1 format (no per-record
// checksums) for interoperability with older tooling.
func WriteBucketV1(w io.Writer, key CellKey, points *dataset.Set) error {
	return writeBucket(w, key, points, bucketVersionV1)
}

func writeBucket(w io.Writer, key CellKey, points *dataset.Set, version int) error {
	if !key.Valid() {
		return fmt.Errorf("grid: invalid cell key %+v", key)
	}
	if points.Dim() > math.MaxUint16 {
		return fmt.Errorf("grid: dimension %d too large for format", points.Dim())
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(bucketMagic); err != nil {
		return err
	}
	for _, v := range []any{
		uint16(version),
		uint16(points.Dim()),
		int16(key.Lat),
		int16(key.Lon),
		uint64(points.Len()),
	} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	crc := crc32.NewIEEE()
	rec := make([]byte, 8*points.Dim())
	for _, p := range points.Points() {
		for d, x := range p {
			binary.LittleEndian.PutUint64(rec[8*d:], math.Float64bits(x))
		}
		crc.Write(rec)
		if _, err := bw.Write(rec); err != nil {
			return err
		}
		if version >= 2 {
			if err := binary.Write(bw, binary.LittleEndian, crc32.ChecksumIEEE(rec)); err != nil {
				return err
			}
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteBucketFile writes a cell to path, creating parent directories.
func WriteBucketFile(path string, key CellKey, points *dataset.Set) (err error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return WriteBucket(f, key, points)
}

// BucketHeader is the parsed fixed-size prefix of a bucket file.
type BucketHeader struct {
	Version int
	Dim     int
	Key     CellKey
	Count   int
}

// BucketReader streams one bucket file point by point, honoring the
// one-scan restriction of the stream model: callers get each point once,
// in file order, without materializing the cell.
type BucketReader struct {
	r      *bufio.Reader
	header BucketHeader
	read   int
	crc    uint32 // running CRC of the data section
	buf    []byte
}

// NewBucketReader parses the header and prepares to stream points.
func NewBucketReader(r io.Reader) (*BucketReader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, headerSize)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadBucket, err)
	}
	if string(head[:4]) != bucketMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadBucket, head[:4])
	}
	version := binary.LittleEndian.Uint16(head[4:6])
	if version != bucketVersionV1 && version != bucketVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadBucket, version)
	}
	dim := int(binary.LittleEndian.Uint16(head[6:8]))
	if dim == 0 {
		return nil, fmt.Errorf("%w: zero dimension", ErrBadBucket)
	}
	key := CellKey{
		Lat: int(int16(binary.LittleEndian.Uint16(head[8:10]))),
		Lon: int(int16(binary.LittleEndian.Uint16(head[10:12]))),
	}
	if !key.Valid() {
		return nil, fmt.Errorf("%w: invalid cell key %+v", ErrBadBucket, key)
	}
	count := binary.LittleEndian.Uint64(head[12:20])
	if count > math.MaxInt32 {
		return nil, fmt.Errorf("%w: implausible count %d", ErrBadBucket, count)
	}
	return &BucketReader{
		r: br,
		header: BucketHeader{
			Version: int(version),
			Dim:     dim,
			Key:     key,
			Count:   int(count),
		},
		buf: make([]byte, 8*dim),
	}, nil
}

// Header returns the parsed file header.
func (b *BucketReader) Header() BucketHeader { return b.header }

// Next returns the next point, or ok=false after the last point has been
// returned and the trailing checksum verified.
func (b *BucketReader) Next() (vector.Vector, bool, error) {
	p := vector.New(b.header.Dim)
	ok, err := b.NextInto(p)
	if !ok || err != nil {
		return nil, ok, err
	}
	return p, true, nil
}

// NextInto decodes the next point into dst (len Header().Dim), the
// allocation-free variant of Next used to fill flat set slabs directly.
func (b *BucketReader) NextInto(dst []float64) (bool, error) {
	if b.read >= b.header.Count {
		if b.read == b.header.Count {
			b.read++ // verify the trailer exactly once
			var stored uint32
			if err := binary.Read(b.r, binary.LittleEndian, &stored); err != nil {
				return false, fmt.Errorf("%w: missing trailing checksum: %v", ErrTruncated, err)
			}
			if stored != b.crc {
				return false, fmt.Errorf("%w: checksum mismatch (stored %08x, computed %08x)",
					ErrBadBucket, stored, b.crc)
			}
		}
		return false, nil
	}
	if _, err := io.ReadFull(b.r, b.buf); err != nil {
		return false, fmt.Errorf("%w: data ends at point %d of %d: %v",
			ErrTruncated, b.read, b.header.Count, err)
	}
	if b.header.Version >= 2 {
		var rec [4]byte
		if _, err := io.ReadFull(b.r, rec[:]); err != nil {
			return false, fmt.Errorf("%w: record %d checksum missing: %v", ErrTruncated, b.read, err)
		}
		stored := binary.LittleEndian.Uint32(rec[:])
		if got := crc32.ChecksumIEEE(b.buf); got != stored {
			return false, fmt.Errorf("%w: record %d checksum mismatch (stored %08x, computed %08x)",
				ErrBadBucket, b.read, stored, got)
		}
	}
	b.crc = crc32.Update(b.crc, crc32.IEEETable, b.buf)
	for d := 0; d < b.header.Dim; d++ {
		dst[d] = math.Float64frombits(binary.LittleEndian.Uint64(b.buf[8*d:]))
	}
	b.read++
	return true, nil
}

// ReadBucket loads an entire bucket into memory (the serial baseline's
// access pattern).
func ReadBucket(r io.Reader) (CellKey, *dataset.Set, error) {
	br, err := NewBucketReader(r)
	if err != nil {
		return CellKey{}, nil, err
	}
	set, err := dataset.NewSet(br.Header().Dim)
	if err != nil {
		return CellKey{}, nil, err
	}
	// Decode record-by-record into one scratch row and bulk-append into
	// the set's flat slab: no per-point vector allocations. The
	// reservation is bounded — the header count is not checksum-verified
	// until the trailer, so a corrupt count must not allocate count×dim×8
	// bytes up front. Larger valid buckets still load; append growth
	// takes over past the hint.
	grow := br.Header().Count
	if limit := maxPreallocBytes / (8 * br.Header().Dim); grow > limit {
		grow = limit
	}
	set.Grow(grow)
	row := make([]float64, br.Header().Dim)
	for {
		ok, err := br.NextInto(row)
		if err != nil {
			return CellKey{}, nil, err
		}
		if !ok {
			break
		}
		if err := set.AppendFlat(row); err != nil {
			return CellKey{}, nil, err
		}
	}
	return br.Header().Key, set, nil
}

// ReadBucketFile loads a bucket file from disk.
func ReadBucketFile(path string) (CellKey, *dataset.Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return CellKey{}, nil, err
	}
	defer f.Close()
	return ReadBucket(f)
}

// SalvageBucket reads as much of a damaged bucket as can be trusted: it
// returns every record before the first truncation or corruption point,
// along with the error that ended the scan (nil when the file is fully
// intact, in which case this is just ReadBucket). Callers that opt into
// degraded operation check errors.Is(err, ErrTruncated) — or
// ErrBadBucket for any damage — and keep the partial set. In a v2 file
// each salvaged record has passed its own checksum; in a legacy v1 file
// the prefix is complete but unverified (the only checksum is the
// trailer, which a truncated file never reaches).
func SalvageBucket(r io.Reader) (CellKey, *dataset.Set, error) {
	br, err := NewBucketReader(r)
	if err != nil {
		return CellKey{}, nil, err // header unusable: nothing to salvage
	}
	set, err := dataset.NewSet(br.Header().Dim)
	if err != nil {
		return CellKey{}, nil, err
	}
	key := br.Header().Key
	row := make([]float64, br.Header().Dim)
	for {
		ok, err := br.NextInto(row)
		if err != nil {
			return key, set, err
		}
		if !ok {
			return key, set, nil
		}
		if err := set.AppendFlat(row); err != nil {
			return key, set, err
		}
	}
}

// SalvageBucketFile is SalvageBucket over a file on disk.
func SalvageBucketFile(path string) (CellKey, *dataset.Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return CellKey{}, nil, err
	}
	defer f.Close()
	return SalvageBucket(f)
}

// BucketFileName returns the conventional file name for a cell,
// e.g. "N34E118.skmb".
func BucketFileName(key CellKey) string { return key.String() + ".skmb" }

// IndexDir scans dir (non-recursively) for bucket files and returns the
// cell → path index sorted by cell key for deterministic iteration.
// IndexFile reads one bucket file's header into an index entry.
func IndexFile(path string) (IndexEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return IndexEntry{}, err
	}
	br, err := NewBucketReader(f)
	closeErr := f.Close()
	if err != nil {
		return IndexEntry{}, fmt.Errorf("grid: %s: %w", path, err)
	}
	if closeErr != nil {
		return IndexEntry{}, closeErr
	}
	h := br.Header()
	return IndexEntry{Key: h.Key, Path: path, Count: h.Count, Dim: h.Dim}, nil
}

func IndexDir(dir string) ([]IndexEntry, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []IndexEntry
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".skmb") {
			continue
		}
		entry, err := IndexFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		out = append(out, entry)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Lat != out[j].Key.Lat {
			return out[i].Key.Lat < out[j].Key.Lat
		}
		return out[i].Key.Lon < out[j].Key.Lon
	})
	return out, nil
}

// IndexEntry is one cell's bucket file in a directory index.
type IndexEntry struct {
	Key   CellKey
	Path  string
	Count int
	Dim   int
}
