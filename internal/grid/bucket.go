package grid

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"streamkm/internal/dataset"
	"streamkm/internal/vector"
)

// Bucket file format (little-endian):
//
//	magic   [4]byte  "SKMB"
//	version uint16   (currently 1)
//	dim     uint16   attribute dimensionality
//	lat     int16    cell south-west latitude
//	lon     int16    cell south-west longitude
//	count   uint64   number of points
//	data    count*dim float64 attribute values
//	crc     uint32   CRC-32 (IEEE) of the data section
//
// The format stores attributes only; the cell coordinates live in the
// header, matching the paper's pre-bucketed binary files.
const (
	bucketMagic   = "SKMB"
	bucketVersion = 1
	headerSize    = 4 + 2 + 2 + 2 + 2 + 8
)

// ErrBadBucket is wrapped by all bucket-format corruption errors.
var ErrBadBucket = errors.New("grid: malformed bucket file")

// WriteBucket serializes a cell's points to w.
func WriteBucket(w io.Writer, key CellKey, points *dataset.Set) error {
	if !key.Valid() {
		return fmt.Errorf("grid: invalid cell key %+v", key)
	}
	if points.Dim() > math.MaxUint16 {
		return fmt.Errorf("grid: dimension %d too large for format", points.Dim())
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(bucketMagic); err != nil {
		return err
	}
	for _, v := range []any{
		uint16(bucketVersion),
		uint16(points.Dim()),
		int16(key.Lat),
		int16(key.Lon),
		uint64(points.Len()),
	} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	crc := crc32.NewIEEE()
	data := io.MultiWriter(bw, crc)
	buf := make([]byte, 8)
	for _, p := range points.Points() {
		for _, x := range p {
			binary.LittleEndian.PutUint64(buf, math.Float64bits(x))
			if _, err := data.Write(buf); err != nil {
				return err
			}
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteBucketFile writes a cell to path, creating parent directories.
func WriteBucketFile(path string, key CellKey, points *dataset.Set) (err error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return WriteBucket(f, key, points)
}

// BucketHeader is the parsed fixed-size prefix of a bucket file.
type BucketHeader struct {
	Version int
	Dim     int
	Key     CellKey
	Count   int
}

// BucketReader streams one bucket file point by point, honoring the
// one-scan restriction of the stream model: callers get each point once,
// in file order, without materializing the cell.
type BucketReader struct {
	r      *bufio.Reader
	header BucketHeader
	read   int
	crc    uint32 // running CRC of the data section
	buf    []byte
}

// NewBucketReader parses the header and prepares to stream points.
func NewBucketReader(r io.Reader) (*BucketReader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, headerSize)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadBucket, err)
	}
	if string(head[:4]) != bucketMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadBucket, head[:4])
	}
	version := binary.LittleEndian.Uint16(head[4:6])
	if version != bucketVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadBucket, version)
	}
	dim := int(binary.LittleEndian.Uint16(head[6:8]))
	if dim == 0 {
		return nil, fmt.Errorf("%w: zero dimension", ErrBadBucket)
	}
	key := CellKey{
		Lat: int(int16(binary.LittleEndian.Uint16(head[8:10]))),
		Lon: int(int16(binary.LittleEndian.Uint16(head[10:12]))),
	}
	if !key.Valid() {
		return nil, fmt.Errorf("%w: invalid cell key %+v", ErrBadBucket, key)
	}
	count := binary.LittleEndian.Uint64(head[12:20])
	if count > math.MaxInt32 {
		return nil, fmt.Errorf("%w: implausible count %d", ErrBadBucket, count)
	}
	return &BucketReader{
		r: br,
		header: BucketHeader{
			Version: int(version),
			Dim:     dim,
			Key:     key,
			Count:   int(count),
		},
		buf: make([]byte, 8*dim),
	}, nil
}

// Header returns the parsed file header.
func (b *BucketReader) Header() BucketHeader { return b.header }

// Next returns the next point, or ok=false after the last point has been
// returned and the trailing checksum verified.
func (b *BucketReader) Next() (vector.Vector, bool, error) {
	if b.read >= b.header.Count {
		if b.read == b.header.Count {
			b.read++ // verify the trailer exactly once
			var stored uint32
			if err := binary.Read(b.r, binary.LittleEndian, &stored); err != nil {
				return nil, false, fmt.Errorf("%w: missing checksum: %v", ErrBadBucket, err)
			}
			if stored != b.crc {
				return nil, false, fmt.Errorf("%w: checksum mismatch (stored %08x, computed %08x)",
					ErrBadBucket, stored, b.crc)
			}
		}
		return nil, false, nil
	}
	if _, err := io.ReadFull(b.r, b.buf); err != nil {
		return nil, false, fmt.Errorf("%w: truncated data at point %d: %v", ErrBadBucket, b.read, err)
	}
	b.crc = crc32.Update(b.crc, crc32.IEEETable, b.buf)
	p := vector.New(b.header.Dim)
	for d := 0; d < b.header.Dim; d++ {
		p[d] = math.Float64frombits(binary.LittleEndian.Uint64(b.buf[8*d:]))
	}
	b.read++
	return p, true, nil
}

// ReadBucket loads an entire bucket into memory (the serial baseline's
// access pattern).
func ReadBucket(r io.Reader) (CellKey, *dataset.Set, error) {
	br, err := NewBucketReader(r)
	if err != nil {
		return CellKey{}, nil, err
	}
	set, err := dataset.NewSet(br.Header().Dim)
	if err != nil {
		return CellKey{}, nil, err
	}
	for {
		p, ok, err := br.Next()
		if err != nil {
			return CellKey{}, nil, err
		}
		if !ok {
			break
		}
		if err := set.Add(p); err != nil {
			return CellKey{}, nil, err
		}
	}
	return br.Header().Key, set, nil
}

// ReadBucketFile loads a bucket file from disk.
func ReadBucketFile(path string) (CellKey, *dataset.Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return CellKey{}, nil, err
	}
	defer f.Close()
	return ReadBucket(f)
}

// BucketFileName returns the conventional file name for a cell,
// e.g. "N34E118.skmb".
func BucketFileName(key CellKey) string { return key.String() + ".skmb" }

// IndexDir scans dir (non-recursively) for bucket files and returns the
// cell → path index sorted by cell key for deterministic iteration.
func IndexDir(dir string) ([]IndexEntry, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []IndexEntry
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".skmb") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		br, err := NewBucketReader(f)
		closeErr := f.Close()
		if err != nil {
			return nil, fmt.Errorf("grid: %s: %w", path, err)
		}
		if closeErr != nil {
			return nil, closeErr
		}
		h := br.Header()
		out = append(out, IndexEntry{Key: h.Key, Path: path, Count: h.Count, Dim: h.Dim})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Lat != out[j].Key.Lat {
			return out[i].Key.Lat < out[j].Key.Lat
		}
		return out[i].Key.Lon < out[j].Key.Lon
	})
	return out, nil
}

// IndexEntry is one cell's bucket file in a directory index.
type IndexEntry struct {
	Key   CellKey
	Path  string
	Count int
	Dim   int
}
