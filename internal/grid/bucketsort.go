package grid

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"streamkm/internal/dataset"
	"streamkm/internal/vector"
)

// This file implements the offline step the paper assumes before
// clustering (§3.1): "the data had been scanned once, and sorted into
// one degree latitude and one degree longitude grid buckets that were
// saved to disk as binary files". The sort is out-of-core: every swath
// file is scanned exactly once, points accumulate in per-cell memory
// buffers, and whenever the total buffered volume exceeds the memory
// budget the largest buffers spill to per-cell append-only segment
// files. A final pass converts each cell's spill into a checksummed
// .skmb bucket.

// BucketSortStats reports what the sort did.
type BucketSortStats struct {
	// PointsScanned counts the swath records read.
	PointsScanned int
	// CellsWritten counts the bucket files produced.
	CellsWritten int
	// Spills counts memory-pressure flushes to segment files.
	Spills int
	// RecordsSkipped counts unusable swath records dropped in lenient
	// mode: records whose coordinates decode to no valid grid cell, and
	// the unreadable remainder of a truncated file.
	RecordsSkipped int
}

// SortOptions tunes SortSwathsToBucketsOpt.
type SortOptions struct {
	// Lenient makes the sort skip-and-count records it cannot use
	// instead of aborting the whole run: a record whose coordinates are
	// non-finite or out of range is dropped, and a swath file that ends
	// mid-record loses only its unread remainder. Damage is reported in
	// BucketSortStats.RecordsSkipped either way.
	Lenient bool
	// OnSkip, when non-nil, observes each lenient skip: the file, the
	// number of records skipped by this event, and the reason.
	OnSkip func(path string, records int, err error)
}

// SortSwathsToBuckets scans the swath files once each and writes one
// .skmb bucket per touched grid cell into outDir. memBudgetPoints bounds
// the points buffered in RAM at any time (the operator-state limit of
// the stream model); a non-positive budget means unbounded. Any
// unusable input record aborts the sort; see SortSwathsToBucketsOpt for
// the lenient variant.
func SortSwathsToBuckets(swathPaths []string, outDir string, memBudgetPoints int) (*BucketSortStats, error) {
	return SortSwathsToBucketsOpt(swathPaths, outDir, memBudgetPoints, SortOptions{})
}

// SortSwathsToBucketsOpt is SortSwathsToBuckets with explicit options.
func SortSwathsToBucketsOpt(swathPaths []string, outDir string, memBudgetPoints int, opts SortOptions) (*BucketSortStats, error) {
	if len(swathPaths) == 0 {
		return nil, fmt.Errorf("grid: no swath files")
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return nil, err
	}
	spillDir, err := os.MkdirTemp(outDir, "spill-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(spillDir)

	stats := &BucketSortStats{}
	buffers := map[CellKey][]vector.Vector{}
	buffered := 0
	dim := 0

	spillCell := func(key CellKey) error {
		pts := buffers[key]
		if len(pts) == 0 {
			return nil
		}
		f, err := os.OpenFile(filepath.Join(spillDir, key.String()+".seg"),
			os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		bw := bufio.NewWriter(f)
		buf := make([]byte, 8)
		for _, p := range pts {
			for _, x := range p {
				binary.LittleEndian.PutUint64(buf, math.Float64bits(x))
				if _, err := bw.Write(buf); err != nil {
					f.Close()
					return err
				}
			}
		}
		if err := bw.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		buffered -= len(pts)
		delete(buffers, key)
		return nil
	}

	spillLargest := func() error {
		stats.Spills++
		// Spill the largest buffers until under half the budget, so
		// spills amortize rather than thrash.
		for buffered > memBudgetPoints/2 {
			var largest CellKey
			max := 0
			for k, pts := range buffers {
				if len(pts) > max {
					largest, max = k, len(pts)
				}
			}
			if max == 0 {
				return nil
			}
			if err := spillCell(largest); err != nil {
				return err
			}
		}
		return nil
	}

	// Phase 1: one scan of every swath file.
	for _, path := range swathPaths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		sr, err := NewSwathReader(f)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("grid: %s: %w", path, err)
		}
		if dim == 0 {
			dim = sr.Dim()
		} else if sr.Dim() != dim {
			f.Close()
			return nil, fmt.Errorf("grid: %s has dim %d, want %d", path, sr.Dim(), dim)
		}
		for {
			p, ok, err := sr.Next()
			if err != nil {
				// Fixed-size records cannot be re-synced after a short
				// read, so a truncated file forfeits its unread tail.
				if opts.Lenient {
					lost := sr.Count() - sr.Read()
					stats.RecordsSkipped += lost
					if opts.OnSkip != nil {
						opts.OnSkip(path, lost, err)
					}
					break
				}
				f.Close()
				return nil, fmt.Errorf("grid: %s: %w", path, err)
			}
			if !ok {
				break
			}
			key, err := p.Cell()
			if err != nil {
				if opts.Lenient {
					stats.RecordsSkipped++
					if opts.OnSkip != nil {
						opts.OnSkip(path, 1, err)
					}
					continue
				}
				f.Close()
				return nil, fmt.Errorf("grid: %s: %w", path, err)
			}
			buffers[key] = append(buffers[key], vector.Vector(p.Attrs))
			buffered++
			stats.PointsScanned++
			if memBudgetPoints > 0 && buffered > memBudgetPoints {
				if err := spillLargest(); err != nil {
					f.Close()
					return nil, err
				}
			}
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}

	// Phase 2: flush every remaining buffer, then convert each cell's
	// segment file into a bucket.
	for k := range buffers {
		if err := spillCell(k); err != nil {
			return nil, err
		}
	}
	entries, err := os.ReadDir(spillDir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		key, err := parseCellName(e.Name())
		if err != nil {
			return nil, err
		}
		set, err := readSegment(filepath.Join(spillDir, e.Name()), dim)
		if err != nil {
			return nil, err
		}
		out := filepath.Join(outDir, BucketFileName(key))
		if err := WriteBucketFile(out, key, set); err != nil {
			return nil, err
		}
		stats.CellsWritten++
	}
	return stats, nil
}

// parseCellName inverts CellKey.String()+".seg".
func parseCellName(name string) (CellKey, error) {
	base := name
	if len(base) > 4 && base[len(base)-4:] == ".seg" {
		base = base[:len(base)-4]
	}
	var k CellKey
	// CellKey.String() yields 7 runes: [NS]DD[EW]DDD.
	if len(base) != 7 {
		return k, fmt.Errorf("grid: bad segment name %q", name)
	}
	var lat, lon int
	if _, err := fmt.Sscanf(base[1:3], "%d", &lat); err != nil {
		return k, fmt.Errorf("grid: bad segment name %q: %v", name, err)
	}
	if _, err := fmt.Sscanf(base[4:7], "%d", &lon); err != nil {
		return k, fmt.Errorf("grid: bad segment name %q: %v", name, err)
	}
	switch base[0] {
	case 'N':
		k.Lat = lat
	case 'S':
		k.Lat = -lat
	default:
		return k, fmt.Errorf("grid: bad segment name %q", name)
	}
	switch base[3] {
	case 'E':
		k.Lon = lon
	case 'W':
		k.Lon = -lon
	default:
		return k, fmt.Errorf("grid: bad segment name %q", name)
	}
	if !k.Valid() {
		return k, fmt.Errorf("grid: segment name %q decodes to invalid cell", name)
	}
	return k, nil
}

// readSegment loads a raw spill segment (dim float64s per point).
func readSegment(path string, dim int) (*dataset.Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	set, err := dataset.NewSet(dim)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReader(f)
	buf := make([]byte, 8*dim)
	for {
		_, err := io.ReadFull(br, buf)
		if err == io.EOF {
			return set, nil
		}
		if err != nil {
			return nil, fmt.Errorf("grid: segment %s: %w", path, err)
		}
		p := vector.New(dim)
		for d := 0; d < dim; d++ {
			p[d] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*d:]))
		}
		if err := set.Add(p); err != nil {
			return nil, err
		}
	}
}
