package grid

import (
	"bytes"
	"testing"

	"streamkm/internal/dataset"
	"streamkm/internal/vector"
)

// FuzzBucketReader feeds arbitrary bytes to the bucket decoder: it must
// reject or decode, never panic or hang, and never accept data whose
// round-trip differs.
func FuzzBucketReader(f *testing.F) {
	// Seed with a valid file and a few mutations.
	set := dataset.MustNewSet(3)
	for i := 0; i < 5; i++ {
		if err := set.Add(vector.Of(float64(i), float64(i*i), -float64(i))); err != nil {
			f.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := WriteBucket(&buf, CellKey{Lat: 10, Lon: 20}, set); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:headerSize])
	f.Add([]byte("SKMB"))
	f.Add([]byte{})
	mutated := append([]byte{}, valid...)
	mutated[headerSize+3] ^= 0xFF
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		key, set, err := ReadBucket(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted data must re-encode to a decodable bucket with the
		// same contents.
		var out bytes.Buffer
		if err := WriteBucket(&out, key, set); err != nil {
			t.Fatalf("accepted bucket failed to re-encode: %v", err)
		}
		key2, set2, err := ReadBucket(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded bucket failed to decode: %v", err)
		}
		if key2 != key || set2.Len() != set.Len() || set2.Dim() != set.Dim() {
			t.Fatalf("round trip changed shape")
		}
	})
}

// FuzzSalvageBucket hammers the lenient decoder: whatever the bytes,
// it must never panic or hang, anything it does salvage must be
// well-formed (re-encodable and re-decodable), and on bytes the strict
// decoder accepts it must recover every point — salvage is a superset
// of read, never a lossy shortcut on healthy input.
func FuzzSalvageBucket(f *testing.F) {
	set := dataset.MustNewSet(3)
	for i := 0; i < 5; i++ {
		if err := set.Add(vector.Of(float64(i), float64(i*i), -float64(i))); err != nil {
			f.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := WriteBucket(&buf, CellKey{Lat: 10, Lon: 20}, set); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	// Truncation edge cases: mid-header, exactly the header, mid-record
	// at each boundary of the first point, and a clean one-record prefix.
	f.Add(valid[:headerSize/2])
	f.Add(valid[:headerSize])
	f.Add(valid[:headerSize+1])
	f.Add(valid[:headerSize+8*3])
	f.Add(valid[:headerSize+8*3+4])
	f.Add(valid[:len(valid)-1])
	// A corrupt record in the middle: salvage keeps the valid prefix.
	mutated := append([]byte{}, valid...)
	mutated[headerSize+8*3+2] ^= 0xFF
	f.Add(mutated)
	// A v1 (whole-payload CRC) bucket exercises the version split.
	var v1 bytes.Buffer
	if err := WriteBucketV1(&v1, CellKey{Lat: -3, Lon: 7}, set); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	f.Add([]byte("SKMB"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		key, salvaged, err := SalvageBucket(bytes.NewReader(data))
		strictKey, strict, strictErr := ReadBucket(bytes.NewReader(data))
		if strictErr == nil {
			// The strict decoder accepted: salvage must agree completely.
			if err != nil {
				t.Fatalf("salvage rejected bytes the strict decoder accepts: %v", err)
			}
			if key != strictKey || salvaged.Len() != strict.Len() || salvaged.Dim() != strict.Dim() {
				t.Fatalf("salvage disagrees with strict decode on healthy input")
			}
		}
		if salvaged == nil || salvaged.Len() == 0 {
			return
		}
		// Whatever was salvaged must be a well-formed point set.
		var out bytes.Buffer
		if err := WriteBucket(&out, key, salvaged); err != nil {
			t.Fatalf("salvaged points failed to re-encode: %v", err)
		}
		if _, set2, err := ReadBucket(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("re-encoded salvage failed to decode: %v", err)
		} else if set2.Len() != salvaged.Len() {
			t.Fatalf("round trip changed salvage size")
		}
	})
}

// FuzzSwathReader: same contract for the swath decoder.
func FuzzSwathReader(f *testing.F) {
	pts := []GeoPoint{
		{Lat: 1, Lon: 2, Attrs: []float64{3, 4}},
		{Lat: -5, Lon: 6, Attrs: []float64{7, 8}},
	}
	var buf bytes.Buffer
	if err := WriteSwath(&buf, 2, pts); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:swathHeaderSize])
	f.Add([]byte("SKMS"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		sr, err := NewSwathReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		n := 0
		for {
			_, ok, err := sr.Next()
			if err != nil {
				return // corruption detected mid-stream is fine
			}
			if !ok {
				break
			}
			n++
			if n > 1<<20 {
				t.Fatal("reader returned more records than any valid header allows")
			}
		}
		if n != sr.Count() {
			t.Fatalf("decoded %d records, header said %d", n, sr.Count())
		}
	})
}
