package grid

import (
	"testing"
	"testing/quick"

	"streamkm/internal/vector"
)

func TestCellKeyValid(t *testing.T) {
	valid := []CellKey{{-90, -180}, {89, 179}, {0, 0}, {34, -118}}
	for _, k := range valid {
		if !k.Valid() {
			t.Errorf("%+v should be valid", k)
		}
	}
	invalid := []CellKey{{-91, 0}, {90, 0}, {0, -181}, {0, 180}}
	for _, k := range invalid {
		if k.Valid() {
			t.Errorf("%+v should be invalid", k)
		}
	}
}

func TestCellKeyString(t *testing.T) {
	cases := map[CellKey]string{
		{34, -118}:  "N34W118",
		{-1, 90}:    "S01E090",
		{0, 0}:      "N00E000",
		{-90, -180}: "S90W180",
		{89, 179}:   "N89E179",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%+v.String() = %q, want %q", k, got, want)
		}
	}
}

func TestCellOf(t *testing.T) {
	cases := []struct {
		lat, lon float64
		want     CellKey
	}{
		{34.5, -118.2, CellKey{34, -119}},
		{-0.5, 0.5, CellKey{-1, 0}},
		{0, 0, CellKey{0, 0}},
		{90, 180, CellKey{89, 179}}, // poles/antimeridian fold inward
		{-90, -180, CellKey{-90, -180}},
		{89.999, 179.999, CellKey{89, 179}},
	}
	for _, tc := range cases {
		got, err := CellOf(tc.lat, tc.lon)
		if err != nil {
			t.Fatalf("CellOf(%g, %g): %v", tc.lat, tc.lon, err)
		}
		if got != tc.want {
			t.Errorf("CellOf(%g, %g) = %+v, want %+v", tc.lat, tc.lon, got, tc.want)
		}
	}
	if _, err := CellOf(91, 0); err == nil {
		t.Fatal("lat 91 should error")
	}
	if _, err := CellOf(0, 181); err == nil {
		t.Fatal("lon 181 should error")
	}
}

// Property: CellOf always produces a valid key containing the coordinate.
func TestCellOfAlwaysValid(t *testing.T) {
	f := func(latRaw, lonRaw uint16) bool {
		lat := float64(latRaw)/65535*180 - 90
		lon := float64(lonRaw)/65535*360 - 180
		k, err := CellOf(lat, lon)
		if err != nil || !k.Valid() {
			return false
		}
		// the cell must contain the coordinate (modulo edge folding)
		latOK := float64(k.Lat) <= lat && lat <= float64(k.Lat)+1
		lonOK := float64(k.Lon) <= lon && lon <= float64(k.Lon)+1
		return latOK && lonOK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketize(t *testing.T) {
	pts := []GeoPoint{
		{Lat: 10.5, Lon: 20.5, Attrs: vector.Of(1, 2)},
		{Lat: 10.7, Lon: 20.2, Attrs: vector.Of(3, 4)},
		{Lat: -5.5, Lon: 100.1, Attrs: vector.Of(5, 6)},
	}
	cells, err := Bucketize(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells", len(cells))
	}
	if got := len(cells[CellKey{10, 20}]); got != 2 {
		t.Fatalf("cell (10,20) has %d points", got)
	}
	if got := len(cells[CellKey{-6, 100}]); got != 1 {
		t.Fatalf("cell (-6,100) has %d points", got)
	}
}

func TestBucketizeErrors(t *testing.T) {
	if _, err := Bucketize([]GeoPoint{{Lat: 99, Lon: 0, Attrs: vector.Of(1)}}); err == nil {
		t.Fatal("invalid coordinate should error")
	}
	mixed := []GeoPoint{
		{Lat: 0, Lon: 0, Attrs: vector.Of(1)},
		{Lat: 0, Lon: 0, Attrs: vector.Of(1, 2)},
	}
	if _, err := Bucketize(mixed); err == nil {
		t.Fatal("mixed attribute dims should error")
	}
}
