package grid

import (
	"fmt"
	"math"

	"streamkm/internal/dataset"
	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

// SwathSpec describes a simulated polar-orbiting instrument like MISR
// (Fig. 1): the instrument images a stripe of the earth per orbit while
// the planet rotates underneath, so consecutive orbits cover westward-
// shifted stripes and complete coverage takes many orbits.
type SwathSpec struct {
	// SwathWidthDeg is the across-track width of the imaged stripe in
	// degrees of longitude at the equator (MISR: ~360 km ≈ 3.2°).
	SwathWidthDeg float64
	// Orbits is the number of orbits to simulate.
	Orbits int
	// PointsPerOrbit is the number of measurements sampled per orbit.
	PointsPerOrbit int
	// Dim is the attribute dimensionality of each measurement.
	Dim int
	// WestwardShiftDeg is the longitude shift between consecutive
	// orbits caused by earth rotation (MISR: ~24.7° per ~99-min orbit).
	WestwardShiftDeg float64
	// MaxLatDeg bounds the orbit's latitude excursion (inclination
	// proxy); MISR is near-polar, ~82°.
	MaxLatDeg float64
}

// DefaultSwathSpec approximates the MISR orbit geometry.
func DefaultSwathSpec() SwathSpec {
	return SwathSpec{
		SwathWidthDeg:    3.2,
		Orbits:           16,
		PointsPerOrbit:   2000,
		Dim:              6,
		WestwardShiftDeg: 24.7,
		MaxLatDeg:        82,
	}
}

func (s SwathSpec) validate() error {
	if s.SwathWidthDeg <= 0 {
		return fmt.Errorf("grid: swath width must be positive")
	}
	if s.Orbits <= 0 || s.PointsPerOrbit <= 0 {
		return fmt.Errorf("grid: orbits and points per orbit must be positive")
	}
	if s.Dim <= 0 {
		return fmt.Errorf("grid: dim must be positive")
	}
	if s.MaxLatDeg <= 0 || s.MaxLatDeg > 90 {
		return fmt.Errorf("grid: MaxLatDeg must be in (0, 90]")
	}
	return nil
}

// AttributeModel synthesizes the attribute vector for a measurement at a
// coordinate. Implementations stand in for the physical radiances the
// real instrument records.
type AttributeModel interface {
	Attributes(lat, lon float64, r *rng.RNG) vector.Vector
}

// GeoGradientModel is a smooth attribute field plus Gaussian sensor
// noise: attribute d responds to latitude and longitude with a
// d-dependent phase, giving nearby points correlated attributes — the
// "spatial clustering characteristics" of temporal-spatial phenomena the
// paper's conclusion highlights.
type GeoGradientModel struct {
	// Dim is the attribute dimensionality.
	Dim int
	// Noise is the per-attribute Gaussian noise standard deviation.
	Noise float64
	// Scale multiplies the smooth field's amplitude.
	Scale float64
}

// Attributes implements AttributeModel.
func (m GeoGradientModel) Attributes(lat, lon float64, r *rng.RNG) vector.Vector {
	v := vector.New(m.Dim)
	latR := lat * math.Pi / 180
	lonR := lon * math.Pi / 180
	for d := 0; d < m.Dim; d++ {
		phase := float64(d) * math.Pi / float64(m.Dim)
		field := m.Scale * (math.Sin(latR*2+phase) + math.Cos(lonR*3-phase))
		v[d] = field + m.Noise*r.NormFloat64()
	}
	return v
}

// SimulateSwaths generates the instrument's measurements in acquisition
// order: stripe by stripe, exactly the "little control over the order of
// incoming data items" regime of §3. Points for one grid cell are
// therefore scattered across the stream (and across orbits).
func SimulateSwaths(spec SwathSpec, model AttributeModel, seed uint64) ([]GeoPoint, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	if model == nil {
		return nil, fmt.Errorf("grid: nil attribute model")
	}
	r := rng.New(seed)
	points := make([]GeoPoint, 0, spec.Orbits*spec.PointsPerOrbit)
	for orbit := 0; orbit < spec.Orbits; orbit++ {
		// Ground track: the sub-satellite longitude precesses westward
		// each orbit; along one orbit latitude sweeps a full sine cycle.
		baseLon := math.Mod(-float64(orbit)*spec.WestwardShiftDeg+180+3600, 360) - 180
		for i := 0; i < spec.PointsPerOrbit; i++ {
			t := float64(i) / float64(spec.PointsPerOrbit) // orbit phase [0,1)
			lat := spec.MaxLatDeg * math.Sin(2*math.Pi*t)
			// Earth keeps rotating during the orbit itself.
			lon := normalizeLon(baseLon - spec.WestwardShiftDeg*t)
			// Across-track jitter inside the swath.
			lat += (r.Float64() - 0.5) * spec.SwathWidthDeg
			lon = normalizeLon(lon + (r.Float64()-0.5)*spec.SwathWidthDeg)
			if lat > 90 {
				lat = 90
			}
			if lat < -90 {
				lat = -90
			}
			points = append(points, GeoPoint{
				Lat:   lat,
				Lon:   lon,
				Attrs: model.Attributes(lat, lon, r),
			})
		}
	}
	return points, nil
}

func normalizeLon(lon float64) float64 {
	lon = math.Mod(lon+180, 360)
	if lon < 0 {
		lon += 360
	}
	return lon - 180
}

// BucketizeToSets converts a cell → geopoints map into cell → attribute
// sets ready for clustering.
func BucketizeToSets(cells map[CellKey][]GeoPoint) (map[CellKey]*dataset.Set, error) {
	out := make(map[CellKey]*dataset.Set, len(cells))
	for k, pts := range cells {
		if len(pts) == 0 {
			continue
		}
		set, err := dataset.NewSet(len(pts[0].Attrs))
		if err != nil {
			return nil, err
		}
		for _, p := range pts {
			if err := set.Add(p.Attrs); err != nil {
				return nil, fmt.Errorf("grid: cell %v: %w", k, err)
			}
		}
		out[k] = set
	}
	return out, nil
}
