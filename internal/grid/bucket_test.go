package grid

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"streamkm/internal/dataset"
	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

func sampleSet(t *testing.T, n, dim int) *dataset.Set {
	t.Helper()
	r := rng.New(31)
	s := dataset.MustNewSet(dim)
	for i := 0; i < n; i++ {
		p := vector.New(dim)
		for d := range p {
			p[d] = r.NormFloat64() * 10
		}
		if err := s.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestBucketRoundTrip(t *testing.T) {
	key := CellKey{Lat: 34, Lon: -119}
	s := sampleSet(t, 123, 6)
	var buf bytes.Buffer
	if err := WriteBucket(&buf, key, s); err != nil {
		t.Fatal(err)
	}
	gotKey, gotSet, err := ReadBucket(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotKey != key {
		t.Fatalf("key = %+v, want %+v", gotKey, key)
	}
	if gotSet.Len() != s.Len() || gotSet.Dim() != s.Dim() {
		t.Fatalf("set = %dx%d, want %dx%d", gotSet.Len(), gotSet.Dim(), s.Len(), s.Dim())
	}
	for i := 0; i < s.Len(); i++ {
		if !gotSet.At(i).Equal(s.At(i)) {
			t.Fatalf("point %d differs", i)
		}
	}
}

func TestBucketEmptySetRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBucket(&buf, CellKey{0, 0}, dataset.MustNewSet(3)); err != nil {
		t.Fatal(err)
	}
	_, s, err := ReadBucket(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.Dim() != 3 {
		t.Fatalf("empty round trip = %dx%d", s.Len(), s.Dim())
	}
}

func TestBucketWriteInvalidKey(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBucket(&buf, CellKey{Lat: 90, Lon: 0}, sampleSet(t, 1, 2)); err == nil {
		t.Fatal("invalid key should error")
	}
}

func TestBucketReaderStreamsOnce(t *testing.T) {
	key := CellKey{Lat: 1, Lon: 2}
	s := sampleSet(t, 10, 4)
	var buf bytes.Buffer
	if err := WriteBucket(&buf, key, s); err != nil {
		t.Fatal(err)
	}
	br, err := NewBucketReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	h := br.Header()
	if h.Count != 10 || h.Dim != 4 || h.Key != key || h.Version != bucketVersion {
		t.Fatalf("header = %+v", h)
	}
	n := 0
	for {
		p, ok, err := br.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if !p.Equal(s.At(n)) {
			t.Fatalf("streamed point %d differs", n)
		}
		n++
	}
	if n != 10 {
		t.Fatalf("streamed %d points", n)
	}
	// Next after exhaustion stays exhausted without error.
	if _, ok, err := br.Next(); ok || err != nil {
		t.Fatalf("post-exhaustion Next = (%v, %v)", ok, err)
	}
}

func TestBucketCorruptionDetected(t *testing.T) {
	key := CellKey{Lat: 5, Lon: 6}
	s := sampleSet(t, 20, 3)
	var buf bytes.Buffer
	if err := WriteBucket(&buf, key, s); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte{}, good...)
		bad[0] = 'X'
		if _, err := NewBucketReader(bytes.NewReader(bad)); !errors.Is(err, ErrBadBucket) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte{}, good...)
		bad[4] = 99
		if _, err := NewBucketReader(bytes.NewReader(bad)); !errors.Is(err, ErrBadBucket) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("flipped data bit", func(t *testing.T) {
		bad := append([]byte{}, good...)
		bad[headerSize+5] ^= 0x40
		_, _, err := ReadBucket(bytes.NewReader(bad))
		if !errors.Is(err, ErrBadBucket) {
			t.Fatalf("checksum did not catch corruption: %v", err)
		}
	})
	t.Run("truncated data", func(t *testing.T) {
		bad := good[:headerSize+7]
		_, _, err := ReadBucket(bytes.NewReader(bad))
		if !errors.Is(err, ErrBadBucket) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("missing trailer", func(t *testing.T) {
		bad := good[:len(good)-4]
		_, _, err := ReadBucket(bytes.NewReader(bad))
		if !errors.Is(err, ErrBadBucket) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("short header", func(t *testing.T) {
		if _, err := NewBucketReader(bytes.NewReader(good[:10])); !errors.Is(err, ErrBadBucket) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestBucketV1BackCompat(t *testing.T) {
	key := CellKey{Lat: 7, Lon: 8}
	s := sampleSet(t, 40, 5)
	var buf bytes.Buffer
	if err := WriteBucketV1(&buf, key, s); err != nil {
		t.Fatal(err)
	}
	br, err := NewBucketReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if br.Header().Version != 1 {
		t.Fatalf("header = %+v", br.Header())
	}
	gotKey, gotSet, err := ReadBucket(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("v1 file must still read: %v", err)
	}
	if gotKey != key || gotSet.Len() != s.Len() {
		t.Fatalf("v1 round trip = %+v, %d points", gotKey, gotSet.Len())
	}
	for i := 0; i < s.Len(); i++ {
		if !gotSet.At(i).Equal(s.At(i)) {
			t.Fatalf("point %d differs", i)
		}
	}
	// v1 carries no per-record checksums, so it is strictly smaller.
	var v2 bytes.Buffer
	if err := WriteBucket(&v2, key, s); err != nil {
		t.Fatal(err)
	}
	if want := v2.Len() - 4*s.Len(); buf.Len() != want {
		t.Fatalf("v1 size %d, want %d", buf.Len(), want)
	}
}

func TestBucketV2FlippedByteNamesRecord(t *testing.T) {
	key := CellKey{Lat: 3, Lon: 4}
	s := sampleSet(t, 20, 3)
	var buf bytes.Buffer
	if err := WriteBucket(&buf, key, s); err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside record 5's payload: v2 must reject it at that
	// record, not at the file trailer.
	recSize := 8*3 + 4
	bad := append([]byte{}, buf.Bytes()...)
	bad[headerSize+5*recSize+9] ^= 0x01
	br, err := NewBucketReader(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for {
		_, ok, err := br.Next()
		if err != nil {
			if !errors.Is(err, ErrBadBucket) || errors.Is(err, ErrTruncated) {
				t.Fatalf("err = %v", err)
			}
			if !strings.Contains(err.Error(), "record 5") {
				t.Fatalf("corruption not pinned to record 5: %v", err)
			}
			break
		}
		if !ok {
			t.Fatal("flipped byte went undetected")
		}
		seen++
	}
	if seen != 5 {
		t.Fatalf("read %d records before detection, want 5", seen)
	}
}

func TestBucketTruncationIsTyped(t *testing.T) {
	key := CellKey{Lat: 1, Lon: 1}
	s := sampleSet(t, 10, 2)
	var buf bytes.Buffer
	if err := WriteBucket(&buf, key, s); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	recSize := 8*2 + 4
	cases := map[string][]byte{
		"mid-record":      good[:headerSize+3*recSize+7],
		"mid-crc":         good[:headerSize+3*recSize+8*2+1],
		"missing trailer": good[:len(good)-4],
	}
	for name, bad := range cases {
		_, _, err := ReadBucket(bytes.NewReader(bad))
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("%s: err = %v, want ErrTruncated", name, err)
		}
		if !errors.Is(err, ErrBadBucket) {
			t.Errorf("%s: ErrTruncated must wrap ErrBadBucket, got %v", name, err)
		}
	}
	// A checksum mismatch is damage, not truncation.
	bad := append([]byte{}, good...)
	bad[headerSize] ^= 0x80
	if _, _, err := ReadBucket(bytes.NewReader(bad)); errors.Is(err, ErrTruncated) {
		t.Errorf("corruption misreported as truncation: %v", err)
	}
}

func TestSalvageBucketRecoversPrefix(t *testing.T) {
	key := CellKey{Lat: 12, Lon: -40}
	s := sampleSet(t, 30, 4)
	dir := t.TempDir()
	path := filepath.Join(dir, BucketFileName(key))
	if err := WriteBucketFile(path, key, s); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the file mid-way through record 17.
	recSize := 8*4 + 4
	cut := filepath.Join(dir, "cut.skmb")
	if err := os.WriteFile(cut, good[:headerSize+17*recSize+11], 0o644); err != nil {
		t.Fatal(err)
	}
	gotKey, part, err := SalvageBucketFile(cut)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	if gotKey != key {
		t.Fatalf("key = %+v", gotKey)
	}
	if part == nil || part.Len() != 17 {
		t.Fatalf("salvaged %v points, want 17", part.Len())
	}
	for i := 0; i < 17; i++ {
		if !part.At(i).Equal(s.At(i)) {
			t.Fatalf("salvaged point %d differs", i)
		}
	}
	// An intact file salvages completely with no error.
	_, whole, err := SalvageBucketFile(path)
	if err != nil || whole.Len() != 30 {
		t.Fatalf("intact salvage = %d points, %v", whole.Len(), err)
	}
}

// TestSalvageBucketTailEdges pins salvage behaviour at the awkward cut
// points around the end of a v2 file, where "how much survives" depends
// on exactly which checksum the truncation lands in.
func TestSalvageBucketTailEdges(t *testing.T) {
	key := CellKey{Lat: 7, Lon: 9}
	const n, dim = 10, 3
	s := sampleSet(t, n, dim)
	var buf bytes.Buffer
	if err := WriteBucket(&buf, key, s); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	const recSize = 8*dim + 4

	salvage := func(t *testing.T, cut int) (*dataset.Set, error) {
		t.Helper()
		_, part, err := SalvageBucket(bytes.NewReader(good[:cut]))
		return part, err
	}

	t.Run("truncation inside the trailing checksum", func(t *testing.T) {
		// Every record is intact; 2 of the whole-file trailer's 4 bytes
		// survive. All n records have proven themselves and are kept.
		part, err := salvage(t, len(good)-2)
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", err)
		}
		if part.Len() != n {
			t.Fatalf("salvaged %d points, want all %d", part.Len(), n)
		}
	})

	t.Run("truncation inside a record checksum", func(t *testing.T) {
		// Record 6's data bytes are all present but its own CRC is cut
		// short, so the record cannot prove itself: salvage keeps 6.
		part, err := salvage(t, headerSize+6*recSize+8*dim+2)
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", err)
		}
		if part.Len() != 6 {
			t.Fatalf("salvaged %d points, want the 6 verified records", part.Len())
		}
	})

	t.Run("file ends exactly at the last record boundary", func(t *testing.T) {
		// The final record's CRC is the last byte in the file — only the
		// whole-file trailer is missing. Everything salvages, including
		// the boundary record, decoded bit-exactly.
		part, err := salvage(t, len(good)-4)
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", err)
		}
		if part.Len() != n {
			t.Fatalf("salvaged %d points, want all %d", part.Len(), n)
		}
		if !part.At(n - 1).Equal(s.At(n - 1)) {
			t.Fatal("boundary record decoded differently")
		}
	})

	t.Run("file ends exactly at the header boundary", func(t *testing.T) {
		// The header promises n records but not one data byte follows:
		// salvage reports truncation with an empty (not nil) set, so
		// callers can distinguish "nothing recoverable" from "no header".
		part, err := salvage(t, headerSize)
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("err = %v, want ErrTruncated", err)
		}
		if part == nil || part.Len() != 0 {
			t.Fatalf("salvaged %v, want an empty set", part)
		}
	})
}

// TestSalvageBucketZeroLengthRecord covers a header declaring dim 0:
// every record would be zero bytes long, so a reader that accepted it
// could "verify" an unbounded stream of empty records. It must be
// rejected as damage, with nothing salvaged.
func TestSalvageBucketZeroLengthRecord(t *testing.T) {
	s := sampleSet(t, 4, 2)
	var buf bytes.Buffer
	if err := WriteBucket(&buf, CellKey{Lat: 1, Lon: 1}, s); err != nil {
		t.Fatal(err)
	}
	bad := buf.Bytes()
	bad[6], bad[7] = 0, 0 // dim := 0
	_, part, err := SalvageBucket(bytes.NewReader(bad))
	if !errors.Is(err, ErrBadBucket) {
		t.Fatalf("err = %v, want ErrBadBucket", err)
	}
	if errors.Is(err, ErrTruncated) {
		t.Fatal("a zero-dimension header is damage, not truncation")
	}
	if part != nil {
		t.Fatal("salvaged a set from an unusable header")
	}
}

func TestSalvageBucketV1Truncated(t *testing.T) {
	key := CellKey{Lat: 2, Lon: 3}
	s := sampleSet(t, 12, 2)
	var buf bytes.Buffer
	if err := WriteBucketV1(&buf, key, s); err != nil {
		t.Fatal(err)
	}
	bad := buf.Bytes()[:headerSize+5*8*2+3]
	_, part, err := SalvageBucket(bytes.NewReader(bad))
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v", err)
	}
	if part.Len() != 5 {
		t.Fatalf("salvaged %d v1 points, want 5", part.Len())
	}
}

func TestBucketFileAndIndex(t *testing.T) {
	dir := t.TempDir()
	cells := []struct {
		key CellKey
		n   int
	}{
		{CellKey{10, 20}, 50},
		{CellKey{-5, 100}, 30},
		{CellKey{10, 19}, 10},
	}
	for _, c := range cells {
		path := filepath.Join(dir, BucketFileName(c.key))
		if err := WriteBucketFile(path, c.key, sampleSet(t, c.n, 6)); err != nil {
			t.Fatal(err)
		}
	}
	// a non-bucket file should be ignored
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	idx, err := IndexDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 3 {
		t.Fatalf("index has %d entries", len(idx))
	}
	// sorted by (lat, lon): (-5,100), (10,19), (10,20)
	if idx[0].Key != (CellKey{-5, 100}) || idx[1].Key != (CellKey{10, 19}) || idx[2].Key != (CellKey{10, 20}) {
		t.Fatalf("index order wrong: %+v", idx)
	}
	if idx[0].Count != 30 || idx[0].Dim != 6 {
		t.Fatalf("entry meta wrong: %+v", idx[0])
	}
	key, set, err := ReadBucketFile(idx[2].Path)
	if err != nil {
		t.Fatal(err)
	}
	if key != (CellKey{10, 20}) || set.Len() != 50 {
		t.Fatalf("read back %+v with %d points", key, set.Len())
	}
}

func TestWriteBucketFileErrors(t *testing.T) {
	dir := t.TempDir()
	// Parent "directory" is actually a file: MkdirAll must fail.
	blocker := filepath.Join(dir, "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(blocker, "sub", "N00E000.skmb")
	if err := WriteBucketFile(path, CellKey{0, 0}, sampleSet(t, 1, 2)); err == nil {
		t.Fatal("writing under a file should error")
	}
	// Target path is a directory: Create must fail.
	asDir := filepath.Join(dir, "N00E000.skmb")
	if err := os.MkdirAll(asDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := WriteBucketFile(asDir, CellKey{0, 0}, sampleSet(t, 1, 2)); err == nil {
		t.Fatal("writing onto a directory should error")
	}
}

func TestIndexDirMissing(t *testing.T) {
	if _, err := IndexDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing dir should error")
	}
}
