package grid

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

func swathPoints(t *testing.T, n, dim int, seed uint64) []GeoPoint {
	t.Helper()
	r := rng.New(seed)
	pts := make([]GeoPoint, n)
	for i := range pts {
		attrs := vector.New(dim)
		for d := range attrs {
			attrs[d] = r.NormFloat64() * 5
		}
		pts[i] = GeoPoint{
			Lat:   r.Float64()*170 - 85,
			Lon:   r.Float64()*350 - 175,
			Attrs: attrs,
		}
	}
	return pts
}

func TestSwathRoundTrip(t *testing.T) {
	pts := swathPoints(t, 57, 4, 1)
	var buf bytes.Buffer
	if err := WriteSwath(&buf, 4, pts); err != nil {
		t.Fatal(err)
	}
	sr, err := NewSwathReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sr.Dim() != 4 || sr.Count() != 57 {
		t.Fatalf("header: dim=%d count=%d", sr.Dim(), sr.Count())
	}
	for i := 0; ; i++ {
		p, ok, err := sr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			if i != 57 {
				t.Fatalf("streamed %d records", i)
			}
			break
		}
		if p.Lat != pts[i].Lat || p.Lon != pts[i].Lon || !vector.Vector(p.Attrs).Equal(pts[i].Attrs) {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestSwathWriteValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSwath(&buf, 0, nil); err == nil {
		t.Fatal("dim=0 should error")
	}
	bad := []GeoPoint{{Attrs: []float64{1, 2}}}
	if err := WriteSwath(&buf, 3, bad); err == nil {
		t.Fatal("attr dim mismatch should error")
	}
}

func TestSwathCorruption(t *testing.T) {
	pts := swathPoints(t, 10, 3, 2)
	var buf bytes.Buffer
	if err := WriteSwath(&buf, 3, pts); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte{}, good...)
		bad[0] = 'Z'
		if _, err := NewSwathReader(bytes.NewReader(bad)); !errors.Is(err, ErrBadSwath) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		bad := append([]byte{}, good...)
		bad[4] = 7
		if _, err := NewSwathReader(bytes.NewReader(bad)); !errors.Is(err, ErrBadSwath) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		sr, err := NewSwathReader(bytes.NewReader(good[:len(good)-8]))
		if err != nil {
			t.Fatal(err)
		}
		for {
			_, ok, err := sr.Next()
			if err != nil {
				if !errors.Is(err, ErrBadSwath) {
					t.Fatalf("err = %v", err)
				}
				return
			}
			if !ok {
				t.Fatal("truncation not detected")
			}
		}
	})
	t.Run("short header", func(t *testing.T) {
		if _, err := NewSwathReader(bytes.NewReader(good[:5])); !errors.Is(err, ErrBadSwath) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestParseCellName(t *testing.T) {
	for _, key := range []CellKey{{34, -118}, {-1, 90}, {0, 0}, {-90, -180}, {89, 179}} {
		got, err := parseCellName(key.String() + ".seg")
		if err != nil {
			t.Fatalf("%v: %v", key, err)
		}
		if got != key {
			t.Fatalf("round trip %v -> %v", key, got)
		}
	}
	for _, bad := range []string{"", "X00E000.seg", "N00X000.seg", "N0E000.seg", "hello"} {
		if _, err := parseCellName(bad); err == nil {
			t.Fatalf("parseCellName(%q) should error", bad)
		}
	}
}

func TestSortSwathsToBuckets(t *testing.T) {
	dir := t.TempDir()
	// Two swath files whose points interleave over the same cells.
	all := swathPoints(t, 600, 3, 5)
	pathA := filepath.Join(dir, "orbit1.skms")
	pathB := filepath.Join(dir, "orbit2.skms")
	if err := WriteSwathFile(pathA, 3, all[:300]); err != nil {
		t.Fatal(err)
	}
	if err := WriteSwathFile(pathB, 3, all[300:]); err != nil {
		t.Fatal(err)
	}
	outDir := filepath.Join(dir, "buckets")
	// Tight budget forces spills.
	stats, err := SortSwathsToBuckets([]string{pathA, pathB}, outDir, 50)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PointsScanned != 600 {
		t.Fatalf("scanned %d points", stats.PointsScanned)
	}
	if stats.Spills == 0 {
		t.Fatal("tight budget should force spills")
	}
	// Every input point must be in exactly one bucket.
	index, err := IndexDir(outDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(index) != stats.CellsWritten {
		t.Fatalf("index %d != written %d", len(index), stats.CellsWritten)
	}
	total := 0
	for _, e := range index {
		key, set, err := ReadBucketFile(e.Path)
		if err != nil {
			t.Fatal(err)
		}
		total += set.Len()
		// Every point in this bucket must belong to a source point in
		// this cell (verify by membership of the first attribute).
		if key != e.Key {
			t.Fatalf("key mismatch: %v vs %v", key, e.Key)
		}
	}
	if total != 600 {
		t.Fatalf("buckets hold %d points, want 600", total)
	}
	// Content check: pick a specific source point and find it.
	want := all[123]
	wantKey, err := want.Cell()
	if err != nil {
		t.Fatal(err)
	}
	_, set, err := ReadBucketFile(filepath.Join(outDir, BucketFileName(wantKey)))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range set.Points() {
		if p.Equal(want.Attrs) {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("point 123 missing from its cell bucket %v", wantKey)
	}
}

func TestSortSwathsUnboundedBudget(t *testing.T) {
	dir := t.TempDir()
	pts := swathPoints(t, 100, 2, 9)
	path := filepath.Join(dir, "o.skms")
	if err := WriteSwathFile(path, 2, pts); err != nil {
		t.Fatal(err)
	}
	stats, err := SortSwathsToBuckets([]string{path}, filepath.Join(dir, "out"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Spills != 0 {
		t.Fatalf("unbounded budget should not spill, got %d", stats.Spills)
	}
	if stats.PointsScanned != 100 {
		t.Fatalf("scanned %d", stats.PointsScanned)
	}
}

func TestSortSwathsErrors(t *testing.T) {
	if _, err := SortSwathsToBuckets(nil, t.TempDir(), 0); err == nil {
		t.Fatal("no inputs should error")
	}
	if _, err := SortSwathsToBuckets([]string{"/nonexistent/x.skms"}, t.TempDir(), 0); err == nil {
		t.Fatal("missing file should error")
	}
	// Mixed dimensions across files are rejected.
	dir := t.TempDir()
	a := filepath.Join(dir, "a.skms")
	b := filepath.Join(dir, "b.skms")
	if err := WriteSwathFile(a, 2, swathPoints(t, 10, 2, 1)); err != nil {
		t.Fatal(err)
	}
	if err := WriteSwathFile(b, 3, swathPoints(t, 10, 3, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := SortSwathsToBuckets([]string{a, b}, filepath.Join(dir, "out"), 0); err == nil {
		t.Fatal("mixed dims should error")
	}
	// A corrupt swath file is reported.
	c := filepath.Join(dir, "c.skms")
	if err := os.WriteFile(c, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := SortSwathsToBuckets([]string{c}, filepath.Join(dir, "out2"), 0); err == nil {
		t.Fatal("corrupt swath should error")
	}
}

func TestSortSwathsLenientSkipsPoison(t *testing.T) {
	dir := t.TempDir()
	pts := swathPoints(t, 30, 3, 9)
	// Poison two records: a NaN latitude and an out-of-range longitude.
	pts[4].Lat = math.NaN()
	pts[11].Lon = 512
	swath := filepath.Join(dir, "a.skms")
	if err := WriteSwathFile(swath, 3, pts); err != nil {
		t.Fatal(err)
	}
	// A second swath truncated mid-way through record 6 of 10.
	pts2 := swathPoints(t, 10, 3, 10)
	var buf bytes.Buffer
	if err := WriteSwath(&buf, 3, pts2); err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(dir, "b.skms")
	recSize := 8 * (3 + 2)
	if err := os.WriteFile(cut, buf.Bytes()[:swathHeaderSize+6*recSize+9], 0o644); err != nil {
		t.Fatal(err)
	}

	// Strict mode aborts on the first poison record.
	if _, err := SortSwathsToBuckets([]string{swath, cut}, filepath.Join(dir, "strict"), 0); err == nil {
		t.Fatal("strict sort should abort on poison records")
	}

	var skipped int
	stats, err := SortSwathsToBucketsOpt([]string{swath, cut}, filepath.Join(dir, "out"), 0, SortOptions{
		Lenient: true,
		OnSkip:  func(_ string, n int, err error) { skipped += n },
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 poison records + 4 lost to truncation (records 6..9 of file b).
	if stats.RecordsSkipped != 6 || skipped != 6 {
		t.Fatalf("RecordsSkipped = %d (callback saw %d), want 6", stats.RecordsSkipped, skipped)
	}
	if stats.PointsScanned != 28+6 {
		t.Fatalf("PointsScanned = %d, want 34", stats.PointsScanned)
	}
	// Every surviving record landed in a bucket.
	idx, err := IndexDir(filepath.Join(dir, "out"))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, e := range idx {
		total += e.Count
	}
	if total != 34 {
		t.Fatalf("buckets hold %d points, want 34", total)
	}
}
