package loadgen

import (
	"math"
	"reflect"
	"testing"
)

var allShapes = []string{ShapeMixture, ShapeDrift, ShapeBurst, ShapeAdversarial}

// The whole harness hangs off this invariant: equal (spec, session)
// must replay bit-identical points, across every shape, so a committed
// baseline and a CI run measure the same workload.
func TestCorpusBitReproducible(t *testing.T) {
	for _, shape := range allShapes {
		spec := CorpusSpec{Shape: shape, Dim: 5, Clusters: 4, Seed: 42}
		c1, err := NewCorpus(spec)
		if err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		c2, err := NewCorpus(spec)
		if err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		for _, session := range []int{0, 1, 7} {
			a := c1.Stream(session).Batch(2048)
			b := c2.Stream(session).Batch(2048)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s session %d: independent corpora disagree", shape, session)
			}
		}
	}
}

// A re-created stream replays from position zero — the property the
// recovery drill's "re-ingest the same stream" step relies on.
func TestCorpusStreamReplays(t *testing.T) {
	c, err := NewCorpus(CorpusSpec{Shape: ShapeAdversarial, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	first := c.Stream(3).Batch(500)
	again := c.Stream(3).Batch(500)
	if !reflect.DeepEqual(first, again) {
		t.Fatal("fresh stream did not replay the original points")
	}
}

func TestCorpusSessionsDecorrelated(t *testing.T) {
	c, err := NewCorpus(CorpusSpec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := c.Stream(0).Batch(64)
	b := c.Stream(1).Batch(64)
	if reflect.DeepEqual(a, b) {
		t.Fatal("sessions 0 and 1 generated identical points")
	}
}

func TestCorpusDefaultsAndValidation(t *testing.T) {
	c, err := NewCorpus(CorpusSpec{})
	if err != nil {
		t.Fatal(err)
	}
	spec := c.Spec()
	if spec.Shape != ShapeMixture || spec.Dim != 6 || spec.Clusters != 8 {
		t.Fatalf("unexpected defaults: %+v", spec)
	}
	if _, err := NewCorpus(CorpusSpec{Shape: "bogus"}); err == nil {
		t.Fatal("unknown shape accepted")
	}
}

// Every shape must emit finite points of the right dimensionality, and
// the adversarial shape must actually contain duplicate runs.
func TestCorpusShapesWellFormed(t *testing.T) {
	for _, shape := range allShapes {
		c, err := NewCorpus(CorpusSpec{Shape: shape, Dim: 4, Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", shape, err)
		}
		pts := c.Stream(0).Batch(1000)
		dups := 0
		for i, p := range pts {
			if len(p) != 4 {
				t.Fatalf("%s: point %d has dim %d", shape, i, len(p))
			}
			for _, v := range p {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s: point %d not finite: %v", shape, i, p)
				}
			}
			if i > 0 && reflect.DeepEqual(pts[i-1], p) {
				dups++
			}
		}
		if shape == ShapeAdversarial && dups == 0 {
			t.Error("adversarial shape produced no duplicate runs")
		}
	}
}
