package loadgen

import (
	"encoding/json"
	"fmt"
	"sort"
)

// ReportSchema identifies the load-report document format, versioned
// alongside the run-report schema. Bump only on incompatible changes.
const ReportSchema = "streamkm.load-report/v1"

// Gate is one regression-gated scalar: scripts/load_gate.sh compares
// each gate's value against the committed baseline's same-named gate,
// in the stated direction, at a noise-tolerant threshold. Keeping the
// gate list inside the report means the comparator needs no knowledge
// of the report's nested shape.
type Gate struct {
	Metric    string  `json:"metric"`
	Value     float64 `json:"value"`
	Direction string  `json:"direction"` // "higher" (regression = lower) or "lower" (regression = higher)
}

// DriverReport is one driver's results across the four scenarios.
// Sections are nil when a scenario was skipped.
type DriverReport struct {
	Driver      string             `json:"driver"`
	Throughput  *ThroughputResult  `json:"throughput,omitempty"`
	Latency     *LatencyResult     `json:"latency,omitempty"`
	Degradation *DegradationResult `json:"degradation,omitempty"`
	Recovery    *RecoveryResult    `json:"recovery,omitempty"`
}

// Report is the versioned load-report document. Field order is fixed
// and every nested structure is a struct (no maps), so marshaling a
// given Report value is byte-stable.
type Report struct {
	Schema  string         `json:"schema"`
	Profile string         `json:"profile"`
	Corpus  CorpusSpec     `json:"corpus"`
	Session SessionSpec    `json:"session"`
	Drivers []DriverReport `json:"drivers"`
	Gates   []Gate         `json:"gates"`
}

// BuildGates derives the gated scalars from the scenario results and
// stores them sorted by metric name. Call after the driver sections
// are filled in.
func (r *Report) BuildGates() {
	var gates []Gate
	add := func(metric string, v float64, dir string) {
		gates = append(gates, Gate{Metric: metric, Value: v, Direction: dir})
	}
	for _, d := range r.Drivers {
		p := d.Driver + "_"
		if t := d.Throughput; t != nil {
			add(p+"ceiling_pps", t.CeilingPPS, "higher")
		}
		if l := d.Latency; l != nil {
			add(p+"ingest_p99_ms", l.Ingest.P99Ms, "lower")
			if l.Query.Count > 0 {
				add(p+"query_p99_ms", l.Query.P99Ms, "lower")
			}
		}
		if g := d.Degradation; g != nil {
			add(p+"degraded_achieved_pps", g.AchievedPPS, "higher")
		}
		if rec := d.Recovery; rec != nil {
			add(p+"recovery_ready_seconds", rec.ReadySeconds, "lower")
			add(p+"recovery_query_seconds", rec.QuerySeconds, "lower")
		}
	}
	sort.Slice(gates, func(i, j int) bool { return gates[i].Metric < gates[j].Metric })
	r.Gates = gates
}

// Validate checks the document's invariants: the schema tag, unique
// driver names, legal gate directions, and that every present gate
// value is finite-by-construction (JSON cannot carry NaN, so this is
// a marshal-time guarantee re-checked for clarity).
func (r *Report) Validate() error {
	if r.Schema != ReportSchema {
		return fmt.Errorf("loadgen: report schema %q, want %q", r.Schema, ReportSchema)
	}
	if len(r.Drivers) == 0 {
		return fmt.Errorf("loadgen: report has no driver sections")
	}
	seen := map[string]bool{}
	for _, d := range r.Drivers {
		if d.Driver == "" {
			return fmt.Errorf("loadgen: driver section with empty name")
		}
		if seen[d.Driver] {
			return fmt.Errorf("loadgen: duplicate driver section %q", d.Driver)
		}
		seen[d.Driver] = true
	}
	for _, g := range r.Gates {
		if g.Direction != "higher" && g.Direction != "lower" {
			return fmt.Errorf("loadgen: gate %q has direction %q (want higher or lower)", g.Metric, g.Direction)
		}
	}
	return nil
}

// JSON marshals the report with indentation and a trailing newline —
// the exact bytes cmd/loadgen writes and LOAD_*.json commits.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ParseReport decodes and validates a load report.
func ParseReport(b []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("loadgen: parsing report: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}
