package loadgen

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"

	"streamkm"
)

// EngineDriver drives streamkm.WindowedClusterer instances in-process:
// the pure engine ceiling, with no HTTP, WAL, or fsync on the path.
// Crash/Recover measure the durability analogue the library offers —
// checkpoint images resumed via ResumeWindowedClusterer — so the
// engine and daemon recovery numbers bracket the cost of the daemon's
// extra machinery.
//
// MemoryBudget, when positive, reproduces the serving layer's
// admission rule in-process: each session is charged its estimated
// working set (chunk buffer plus retained window summaries) and
// admissions beyond the budget are refused, which is what the
// degradation scenario measures.
type EngineDriver struct {
	MemoryBudget int64

	mu       sync.Mutex
	spec     SessionSpec
	sessions []*engineSession
	images   [][]byte // checkpoint images captured by Crash
	clock    Clock
}

type engineSession struct {
	mu  sync.Mutex
	win *streamkm.WindowedClusterer
}

// NewEngineDriver returns an engine driver over clock (nil = RealClock).
func NewEngineDriver(clock Clock) *EngineDriver {
	if clock == nil {
		clock = RealClock{}
	}
	return &EngineDriver{clock: clock}
}

// Name identifies the driver in reports.
func (d *EngineDriver) Name() string { return "engine" }

// SessionCost mirrors the serving layer's working-set estimate for a
// windowed session: the chunk buffer plus W+3 k-summaries.
func SessionCost(spec SessionSpec) int64 {
	per := int64(8 * (spec.Dim + 1))
	return int64(spec.ChunkPoints)*int64(spec.Dim)*8 +
		int64(spec.WindowChunks+3)*int64(spec.K)*per
}

func (spec SessionSpec) windowedOptions() streamkm.WindowedOptions {
	return streamkm.WindowedOptions{
		K:            spec.K,
		ChunkPoints:  spec.ChunkPoints,
		WindowChunks: spec.WindowChunks,
		Seed:         spec.Seed,
	}
}

// Open admits up to n sessions, stopping at the memory budget.
func (d *EngineDriver) Open(spec SessionSpec, n int) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.spec = spec
	d.sessions, d.images = nil, nil
	var used int64
	cost := SessionCost(spec)
	for i := 0; i < n; i++ {
		if d.MemoryBudget > 0 && used+cost > d.MemoryBudget {
			break
		}
		win, err := streamkm.NewWindowedClusterer(spec.Dim, sessionOptions(spec, len(d.sessions)))
		if err != nil {
			return len(d.sessions), err
		}
		d.sessions = append(d.sessions, &engineSession{win: win})
		used += cost
	}
	return len(d.sessions), nil
}

// sessionOptions derives per-session options: each session gets its
// own seed stream so N sessions don't run N copies of one RNG.
func sessionOptions(spec SessionSpec, session int) streamkm.WindowedOptions {
	o := spec.windowedOptions()
	o.Seed = spec.Seed + uint64(session)*0x9e3779b97f4a7c15
	return o
}

func (d *EngineDriver) session(i int) (*engineSession, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if i < 0 || i >= len(d.sessions) {
		return nil, fmt.Errorf("loadgen: engine session %d out of range [0, %d)", i, len(d.sessions))
	}
	s := d.sessions[i]
	if s.win == nil {
		return nil, errors.New("loadgen: engine session crashed; call Recover first")
	}
	return s, nil
}

// Ingest pushes the batch into one session.
func (d *EngineDriver) Ingest(session int, points [][]float64) error {
	s, err := d.session(session)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range points {
		if err := s.win.Push(p); err != nil {
			return err
		}
	}
	return nil
}

// Query takes a windowed snapshot.
func (d *EngineDriver) Query(session int) error {
	s, err := d.session(session)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.win.Snapshot(); err != nil {
		if strings.Contains(err.Error(), "window is empty") {
			return ErrNotReady
		}
		return err
	}
	return nil
}

// Crash captures each session's durable image (its checkpoint) and
// drops the live clusterers — the in-process analogue of a process
// death with checkpoints on disk.
func (d *EngineDriver) Crash() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.images = make([][]byte, len(d.sessions))
	for i, s := range d.sessions {
		var buf bytes.Buffer
		s.mu.Lock()
		err := s.win.Checkpoint(&buf)
		s.win = nil
		s.mu.Unlock()
		if err != nil {
			return fmt.Errorf("loadgen: checkpointing session %d: %w", i, err)
		}
		d.images[i] = buf.Bytes()
	}
	return nil
}

// Recover resumes every session from its image and answers one
// snapshot query per session.
func (d *EngineDriver) Recover() (RecoveryTiming, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var t RecoveryTiming
	if d.images == nil {
		return t, errors.New("loadgen: Recover without Crash")
	}
	start := d.clock.Now()
	for i, img := range d.images {
		win, err := streamkm.ResumeWindowedClusterer(bytes.NewReader(img), sessionOptions(d.spec, i))
		if err != nil {
			return t, fmt.Errorf("loadgen: resuming session %d: %w", i, err)
		}
		d.sessions[i].win = win
	}
	t.ReadySeconds = nowSeconds(d.clock, start)
	for i, s := range d.sessions {
		if _, err := s.win.Snapshot(); err != nil {
			return t, fmt.Errorf("loadgen: post-recovery snapshot of session %d: %w", i, err)
		}
	}
	t.QuerySeconds = nowSeconds(d.clock, start)
	t.Sessions = len(d.sessions)
	d.images = nil
	return t, nil
}

// Close releases every session.
func (d *EngineDriver) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.sessions, d.images = nil, nil
	return nil
}
