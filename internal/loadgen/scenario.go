package loadgen

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"streamkm/internal/obs"
)

// Scenario names, as they appear in reports and on the CLI.
const (
	ScenarioThroughput  = "throughput"
	ScenarioLatency     = "latency"
	ScenarioDegradation = "degradation"
	ScenarioRecovery    = "recovery"
)

// pacedStats aggregates one paced run across all session workers.
type pacedStats struct {
	attempts       int64 // ingest calls issued
	rejects        int64 // calls refused with ErrBackpressure
	acceptedPoints int64 // points the system under test accepted
	elapsed        float64
}

func (s pacedStats) achievedPPS(fallback time.Duration) float64 {
	el := s.elapsed
	if el <= 0 {
		el = fallback.Seconds()
	}
	if el <= 0 {
		return 0
	}
	return float64(s.acceptedPoints) / el
}

// pacedRun drives `sessions` concurrent workers for `duration`: each
// worker paces its share of totalRate, pulls batches from its stream,
// and ingests them. hook (optional) runs after every ingest attempt
// with the call's latency and outcome — the latency scenario hangs its
// histograms and interleaved queries on it. Backpressure is counted
// and the worker moves on (the pacer keeps the offered rate honest);
// any other error aborts the run.
func pacedRun(d Driver, streams []*PointStream, totalRate float64, duration time.Duration,
	batch int, clock Clock, hook func(session, batchIdx int, seconds float64, err error) error) (pacedStats, error) {

	sessions := len(streams)
	perRate := totalRate / float64(sessions)
	start := clock.Now()
	end := start.Add(duration)

	var stats pacedStats
	var firstErr atomic.Value
	var wg sync.WaitGroup
	for si := 0; si < sessions; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			pacer := NewPacer(perRate, clock)
			stream := streams[si]
			for batchIdx := 0; clock.Now().Before(end); batchIdx++ {
				pacer.Wait(batch)
				pts := stream.Batch(batch)
				t0 := clock.Now()
				err := d.Ingest(si, pts)
				secs := clock.Now().Sub(t0).Seconds()
				atomic.AddInt64(&stats.attempts, 1)
				switch {
				case err == nil:
					atomic.AddInt64(&stats.acceptedPoints, int64(len(pts)))
				case errors.Is(err, ErrBackpressure):
					atomic.AddInt64(&stats.rejects, 1)
				default:
					firstErr.CompareAndSwap(nil, fmt.Errorf("loadgen: session %d ingest: %w", si, err))
					return
				}
				if hook != nil {
					if herr := hook(si, batchIdx, secs, err); herr != nil {
						firstErr.CompareAndSwap(nil, herr)
						return
					}
				}
			}
		}(si)
	}
	wg.Wait()
	stats.elapsed = clock.Now().Sub(start).Seconds()
	if v := firstErr.Load(); v != nil {
		return stats, v.(error)
	}
	return stats, nil
}

// openStreams admits sessions and builds one corpus stream per
// admitted session.
func openStreams(d Driver, c *Corpus, spec SessionSpec, sessions int) ([]*PointStream, int, error) {
	admitted, err := d.Open(spec, sessions)
	if err != nil {
		return nil, admitted, err
	}
	if admitted == 0 {
		return nil, 0, nil
	}
	streams := make([]*PointStream, admitted)
	for i := range streams {
		streams[i] = c.Stream(i)
	}
	return streams, admitted, nil
}

// ThroughputOptions shapes the step-load ceiling search.
type ThroughputOptions struct {
	Sessions     int
	BatchPoints  int
	StartRate    float64 // total offered points/sec, first step
	MaxRate      float64 // search stops above this
	StepFactor   float64 // rate multiplier per step (0 = 2)
	StepDuration time.Duration
	Spec         SessionSpec
	Clock        Clock
	Logf         func(format string, args ...any)
}

// ThroughputStep is one step of the search.
type ThroughputStep struct {
	OfferedPPS  float64 `json:"offered_pps"`
	AchievedPPS float64 `json:"achieved_pps"`
	RejectFrac  float64 `json:"reject_frac"`
	Passed      bool    `json:"passed"`
}

// ThroughputResult is the ceiling search's outcome. CeilingPPS is the
// highest achieved ingest rate observed at any step — when a step
// fails, its achieved rate IS the capacity estimate (offered load
// beyond capacity doesn't raise it). Saturated reports that the
// search actually found the wall rather than running out of MaxRate.
type ThroughputResult struct {
	Sessions   int              `json:"sessions"`
	CeilingPPS float64          `json:"ceiling_pps"`
	Saturated  bool             `json:"saturated"`
	Steps      []ThroughputStep `json:"steps"`
}

// stepPassFrac and stepRejectFrac are the step SLO: a step passes when
// the system kept up with >= 85% of the offered rate while refusing
// <= 5% of batches.
const (
	stepPassFrac   = 0.85
	stepRejectFrac = 0.05
)

// RunThroughput performs the step-load search: offered rate starts at
// StartRate and multiplies by StepFactor until a step fails its SLO
// (saturation) or MaxRate is exceeded. It terminates on any driver —
// a server refusing every batch fails the first step immediately.
func RunThroughput(d Driver, c *Corpus, opt ThroughputOptions) (*ThroughputResult, error) {
	clock := opt.Clock
	if clock == nil {
		clock = RealClock{}
	}
	factor := opt.StepFactor
	if factor <= 1 {
		factor = 2
	}
	streams, admitted, err := openStreams(d, c, opt.Spec, opt.Sessions)
	if err != nil {
		return nil, err
	}
	res := &ThroughputResult{Sessions: admitted}
	if admitted == 0 {
		res.Saturated = true // nothing was even admitted
		return res, nil
	}
	for rate := opt.StartRate; rate <= opt.MaxRate; rate *= factor {
		stats, err := pacedRun(d, streams, rate, opt.StepDuration, opt.BatchPoints, clock, nil)
		if err != nil {
			return nil, err
		}
		achieved := stats.achievedPPS(opt.StepDuration)
		rejectFrac := 0.0
		if stats.attempts > 0 {
			rejectFrac = float64(stats.rejects) / float64(stats.attempts)
		}
		step := ThroughputStep{
			OfferedPPS:  rate,
			AchievedPPS: achieved,
			RejectFrac:  rejectFrac,
			Passed:      achieved >= stepPassFrac*rate && rejectFrac <= stepRejectFrac,
		}
		res.Steps = append(res.Steps, step)
		if achieved > res.CeilingPPS {
			res.CeilingPPS = achieved
		}
		if opt.Logf != nil {
			opt.Logf("loadgen: %s throughput step offered=%.0f pps achieved=%.0f pps rejects=%.1f%% passed=%t",
				d.Name(), rate, achieved, 100*rejectFrac, step.Passed)
		}
		if !step.Passed {
			res.Saturated = true
			break
		}
	}
	return res, nil
}

// LatencyOptions shapes the latency-under-load scenario.
type LatencyOptions struct {
	Sessions    int
	BatchPoints int
	RatePPS     float64 // total offered rate, held for Duration
	Duration    time.Duration
	// QueryEveryBatches interleaves one snapshot query per session
	// every this many ingest batches (0 = 8) — the fast-query regime
	// of interleaved continuous queries under write pressure.
	QueryEveryBatches int
	Spec              SessionSpec
	Clock             Clock
}

// LatencySummary condenses one obs latency histogram.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

func summarize(h obs.HistogramSnapshot) LatencySummary {
	s := LatencySummary{Count: h.Count}
	if h.Count == 0 {
		return s
	}
	const ms = 1e3
	s.MeanMs = h.Sum / float64(h.Count) * ms
	s.P50Ms = h.Quantile(0.50) * ms
	s.P95Ms = h.Quantile(0.95) * ms
	s.P99Ms = h.Quantile(0.99) * ms
	s.MaxMs = h.Max * ms
	return s
}

// LatencyResult reports ingest and interleaved snapshot-query latency
// distributions under a fixed offered rate.
type LatencyResult struct {
	Sessions        int            `json:"sessions"`
	OfferedPPS      float64        `json:"offered_pps"`
	AchievedPPS     float64        `json:"achieved_pps"`
	Ingest          LatencySummary `json:"ingest"`
	Query           LatencySummary `json:"query"`
	Queries         int64          `json:"queries"`
	QueriesNotReady int64          `json:"queries_not_ready"`
	IngestRejects   int64          `json:"ingest_rejects"`
}

// RunLatency holds RatePPS for Duration while interleaving snapshot
// queries, and reports both paths' latency histograms through the obs
// quantile estimator.
func RunLatency(d Driver, c *Corpus, opt LatencyOptions) (*LatencyResult, error) {
	clock := opt.Clock
	if clock == nil {
		clock = RealClock{}
	}
	queryEvery := opt.QueryEveryBatches
	if queryEvery <= 0 {
		queryEvery = 8
	}
	streams, admitted, err := openStreams(d, c, opt.Spec, opt.Sessions)
	if err != nil {
		return nil, err
	}
	if admitted == 0 {
		return nil, errors.New("loadgen: latency scenario admitted zero sessions")
	}
	reg := obs.NewRegistry()
	ingestH := reg.Histogram("load_ingest_seconds", "", obs.LatencyBuckets())
	queryH := reg.Histogram("load_query_seconds", "", obs.LatencyBuckets())
	var queries, notReady int64
	hook := func(si, batchIdx int, seconds float64, ingErr error) error {
		if ingErr == nil {
			ingestH.Observe(seconds)
		}
		if batchIdx%queryEvery != queryEvery-1 {
			return nil
		}
		t0 := clock.Now()
		qerr := d.Query(si)
		switch {
		case qerr == nil:
			queryH.Observe(clock.Now().Sub(t0).Seconds())
			atomic.AddInt64(&queries, 1)
		case errors.Is(qerr, ErrNotReady):
			atomic.AddInt64(&notReady, 1)
		case errors.Is(qerr, ErrBackpressure):
			atomic.AddInt64(&notReady, 1)
		default:
			return fmt.Errorf("loadgen: session %d query: %w", si, qerr)
		}
		return nil
	}
	stats, err := pacedRun(d, streams, opt.RatePPS, opt.Duration, opt.BatchPoints, clock, hook)
	if err != nil {
		return nil, err
	}
	snap := reg.Snapshot()
	res := &LatencyResult{
		Sessions:        admitted,
		OfferedPPS:      opt.RatePPS,
		AchievedPPS:     stats.achievedPPS(opt.Duration),
		Queries:         queries,
		QueriesNotReady: notReady,
		IngestRejects:   stats.rejects,
	}
	if h := snap.Histogram("load_ingest_seconds", ""); h != nil {
		res.Ingest = summarize(*h)
	}
	if h := snap.Histogram("load_query_seconds", ""); h != nil {
		res.Query = summarize(*h)
	}
	return res, nil
}

// DegradationOptions shapes the governor-pressure scenario. The caller
// constructs the driver with the induced memory budget (the engine
// driver's MemoryBudget field, the daemon's -mem-budget flag); the
// scenario measures what that budget does to admissions and ingest.
type DegradationOptions struct {
	Sessions    int // offered sessions (the budget admits fewer)
	BatchPoints int
	RatePPS     float64
	Duration    time.Duration
	Spec        SessionSpec
	Clock       Clock
}

// DegradationResult reports how the system degraded under the budget:
// refused admissions, refused ingest, and the rate it still sustained.
// The governor contract is graceful degradation — refusals are typed
// 503s and admitted sessions keep working — so AchievedPPS > 0 with
// RejectFrac < 1 is the passing shape.
type DegradationResult struct {
	OfferedSessions  int     `json:"offered_sessions"`
	AdmittedSessions int     `json:"admitted_sessions"`
	RefusedSessions  int     `json:"refused_sessions"`
	IngestAttempts   int64   `json:"ingest_attempts"`
	IngestRejects    int64   `json:"ingest_rejects"`
	RejectFrac       float64 `json:"reject_frac"`
	AchievedPPS      float64 `json:"achieved_pps"`
}

// RunDegradation offers more sessions than the budget can hold and
// measures the degradation surface.
func RunDegradation(d Driver, c *Corpus, opt DegradationOptions) (*DegradationResult, error) {
	clock := opt.Clock
	if clock == nil {
		clock = RealClock{}
	}
	streams, admitted, err := openStreams(d, c, opt.Spec, opt.Sessions)
	if err != nil {
		return nil, err
	}
	res := &DegradationResult{
		OfferedSessions:  opt.Sessions,
		AdmittedSessions: admitted,
		RefusedSessions:  opt.Sessions - admitted,
	}
	if admitted == 0 {
		return res, nil
	}
	stats, err := pacedRun(d, streams, opt.RatePPS, opt.Duration, opt.BatchPoints, clock, nil)
	if err != nil {
		return nil, err
	}
	res.IngestAttempts = stats.attempts
	res.IngestRejects = stats.rejects
	if stats.attempts > 0 {
		res.RejectFrac = float64(stats.rejects) / float64(stats.attempts)
	}
	res.AchievedPPS = stats.achievedPPS(opt.Duration)
	return res, nil
}

// RecoveryOptions shapes the crash-recovery drill.
type RecoveryOptions struct {
	Sessions      int
	BatchPoints   int
	PrefillPoints int // per session, unpaced; must cover >= 1 chunk
	Spec          SessionSpec
	Clock         Clock
}

// RecoveryResult reports the climb back from a crash.
type RecoveryResult struct {
	Sessions      int     `json:"sessions"`
	PrefillPoints int     `json:"prefill_points"`
	ReadySeconds  float64 `json:"ready_seconds"`
	QuerySeconds  float64 `json:"query_seconds"`
}

// RunRecovery prefills every session past its first chunk, verifies
// queries answer, crashes the system under test, and times the
// recovery until it is ready and answering again.
func RunRecovery(d Driver, c *Corpus, opt RecoveryOptions) (*RecoveryResult, error) {
	streams, admitted, err := openStreams(d, c, opt.Spec, opt.Sessions)
	if err != nil {
		return nil, err
	}
	if admitted == 0 {
		return nil, errors.New("loadgen: recovery scenario admitted zero sessions")
	}
	batch := opt.BatchPoints
	if batch <= 0 {
		batch = 64
	}
	var wg sync.WaitGroup
	var firstErr atomic.Value
	for si := 0; si < admitted; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			for sent := 0; sent < opt.PrefillPoints; sent += batch {
				n := batch
				if rem := opt.PrefillPoints - sent; rem < n {
					n = rem
				}
				if err := d.Ingest(si, streams[si].Batch(n)); err != nil && !errors.Is(err, ErrBackpressure) {
					firstErr.CompareAndSwap(nil, fmt.Errorf("loadgen: prefill session %d: %w", si, err))
					return
				}
			}
			if err := d.Query(si); err != nil && !errors.Is(err, ErrNotReady) {
				firstErr.CompareAndSwap(nil, fmt.Errorf("loadgen: pre-crash query session %d: %w", si, err))
			}
		}(si)
	}
	wg.Wait()
	if v := firstErr.Load(); v != nil {
		return nil, v.(error)
	}
	if err := d.Crash(); err != nil {
		return nil, err
	}
	timing, err := d.Recover()
	if err != nil {
		return nil, err
	}
	return &RecoveryResult{
		Sessions:      timing.Sessions,
		PrefillPoints: opt.PrefillPoints,
		ReadySeconds:  timing.ReadySeconds,
		QuerySeconds:  timing.QuerySeconds,
	}, nil
}
