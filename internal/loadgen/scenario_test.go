package loadgen

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// A server refusing everything with 503 is the worst case the ceiling
// search must survive: zero sessions admitted means there is nothing to
// pace, and the search must report saturation immediately instead of
// stepping forever.
func TestThroughputTerminatesOnAlways503(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "queue full", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	d, err := NewDaemonDriver(DaemonConfig{BaseURL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCorpus(CorpusSpec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *ThroughputResult, 1)
	errc := make(chan error, 1)
	go func() {
		res, err := RunThroughput(d, c, ThroughputOptions{
			Sessions: 4, BatchPoints: 16,
			StartRate: 1000, MaxRate: 1e12, StepDuration: 10 * time.Millisecond,
			Spec: SessionSpec{Dim: 6, K: 4, ChunkPoints: 32, WindowChunks: 2, Seed: 1},
		})
		if err != nil {
			errc <- err
			return
		}
		done <- res
	}()
	select {
	case err := <-errc:
		t.Fatal(err)
	case res := <-done:
		if !res.Saturated {
			t.Error("always-503 server not reported as saturated")
		}
		if res.Sessions != 0 || res.CeilingPPS != 0 {
			t.Errorf("admitted=%d ceiling=%.0f, want 0/0", res.Sessions, res.CeilingPPS)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ceiling search did not terminate against an always-503 server")
	}
}

// A server that accepts every ingest but refuses a fraction of batches
// above the SLO must also saturate the search (the admitted > 0 path).
func TestThroughputSaturatesOnRejects(t *testing.T) {
	var n int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path != "/v1/sessions" {
			n++
			if n%2 == 0 { // reject every other batch: 50% >> the 5% SLO
				http.Error(w, "queue full", http.StatusServiceUnavailable)
				return
			}
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	d, err := NewDaemonDriver(DaemonConfig{BaseURL: srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCorpus(CorpusSpec{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunThroughput(d, c, ThroughputOptions{
		Sessions: 1, BatchPoints: 16,
		StartRate: 2000, MaxRate: 1e12, StepDuration: 50 * time.Millisecond,
		Spec: SessionSpec{Dim: 6, K: 4, ChunkPoints: 32, WindowChunks: 2, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Fatalf("50%% reject rate did not saturate the search: %+v", res)
	}
	if len(res.Steps) != 1 {
		t.Fatalf("expected the first step to fail, got %d steps", len(res.Steps))
	}
}

// All four scenarios end-to-end against the in-process engine driver:
// the same path cmd/loadgen takes, shrunk to test size.
func TestEngineScenariosEndToEnd(t *testing.T) {
	spec := SessionSpec{Dim: 4, K: 3, ChunkPoints: 32, WindowChunks: 2, Seed: 7}
	c, err := NewCorpus(CorpusSpec{Dim: 4, Clusters: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}

	tp, err := RunThroughput(NewEngineDriver(nil), c, ThroughputOptions{
		Sessions: 2, BatchPoints: 16,
		StartRate: 2000, MaxRate: 4000, StepDuration: 30 * time.Millisecond,
		Spec: spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tp.Sessions != 2 || tp.CeilingPPS <= 0 || len(tp.Steps) == 0 {
		t.Fatalf("throughput: %+v", tp)
	}

	lat, err := RunLatency(NewEngineDriver(nil), c, LatencyOptions{
		Sessions: 2, BatchPoints: 16,
		RatePPS: 4000, Duration: 150 * time.Millisecond, QueryEveryBatches: 2,
		Spec: spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if lat.Ingest.Count == 0 {
		t.Fatalf("latency recorded no ingest observations: %+v", lat)
	}
	if lat.Queries+lat.QueriesNotReady == 0 {
		t.Fatalf("latency interleaved no queries: %+v", lat)
	}

	deg := NewEngineDriver(nil)
	deg.MemoryBudget = 2 * SessionCost(spec)
	dr, err := RunDegradation(deg, c, DegradationOptions{
		Sessions: 4, BatchPoints: 16,
		RatePPS: 2000, Duration: 100 * time.Millisecond,
		Spec: spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dr.AdmittedSessions != 2 || dr.RefusedSessions != 2 {
		t.Fatalf("budget for 2 sessions admitted %d of %d", dr.AdmittedSessions, dr.OfferedSessions)
	}
	if dr.AchievedPPS <= 0 {
		t.Fatalf("admitted sessions made no progress: %+v", dr)
	}

	rec, err := RunRecovery(NewEngineDriver(nil), c, RecoveryOptions{
		Sessions: 2, BatchPoints: 16, PrefillPoints: 64,
		Spec: spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Sessions != 2 || rec.QuerySeconds < rec.ReadySeconds {
		t.Fatalf("recovery: %+v", rec)
	}
}

// A paced run under the fake clock is exact: sleeps advance instantly,
// so one simulated second of load costs microseconds of test time and
// the batch schedule is fully deterministic. (Single worker: with a
// shared fake clock, a second worker's instant sleeps could push time
// past the end before the first finishes its schedule.)
func TestPacedRunUnderFakeClock(t *testing.T) {
	clock := NewFakeClock()
	d := NewEngineDriver(clock)
	c, err := NewCorpus(CorpusSpec{Dim: 4, Clusters: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	spec := SessionSpec{Dim: 4, K: 3, ChunkPoints: 32, WindowChunks: 2, Seed: 3}
	streams, admitted, err := openStreams(d, c, spec, 1)
	if err != nil || admitted != 1 {
		t.Fatalf("admitted=%d err=%v", admitted, err)
	}
	stats, err := pacedRun(d, streams, 5000, time.Second, 25, clock, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Batch i's due time is 5i ms; the loop admits batches 0..200
	// (the end-of-window check happens before each Wait), so exactly
	// 201 batches * 25 points land in one simulated second.
	if stats.acceptedPoints != 201*25 {
		t.Fatalf("accepted %d points, want %d", stats.acceptedPoints, 201*25)
	}
	if stats.elapsed != 1.0 {
		t.Fatalf("elapsed %v fake seconds, want exactly 1.0", stats.elapsed)
	}
}
