package loadgen

import (
	"errors"
	"time"
)

// Sentinel errors the scenarios dispatch on. Anything else returned by
// a driver aborts the scenario: the harness measures capacity, it does
// not paper over broken systems.
var (
	// ErrBackpressure is a retryable refusal: the daemon answered 503
	// (queue full, memory budget, session limit, draining) or the
	// in-process governor refused admission. The throughput scenario
	// counts these as saturation evidence.
	ErrBackpressure = errors.New("loadgen: backpressure")
	// ErrNotReady means a query arrived before the session had a full
	// chunk to answer from; scenarios skip it rather than fail.
	ErrNotReady = errors.New("loadgen: clustering not ready")
)

// SessionSpec is the clusterer shape every load session runs:
// windowed sessions (the serving layer's continuous-query regime), so
// snapshot queries are meaningful mid-stream.
type SessionSpec struct {
	Dim          int    `json:"dim"`
	K            int    `json:"k"`
	ChunkPoints  int    `json:"chunk_points"`
	WindowChunks int    `json:"window_chunks"`
	Seed         uint64 `json:"seed"`
	// FsyncEvery is the daemon driver's WAL fsync cadence (ignored by
	// the engine driver, which has no WAL). 0 = daemon default.
	FsyncEvery int `json:"fsync_every,omitempty"`
}

// RecoveryTiming breaks down a Recover call: ReadySeconds is the time
// until the system accepted work again (the daemon's /readyz, the
// engine's resumed clusterers), QuerySeconds until every recovered
// session answered a snapshot query.
type RecoveryTiming struct {
	ReadySeconds float64 `json:"ready_seconds"`
	QuerySeconds float64 `json:"query_seconds"`
	Sessions     int     `json:"sessions"`
}

// Driver abstracts the system under test. Open admits up to n
// sessions and returns how many were accepted (governor refusals are
// data, not errors); sessions are then addressed 0..admitted-1.
// Ingest and Query may be called concurrently for different sessions
// but serially per session. Crash destroys the live system keeping
// only durable state; Recover rebuilds it and reports how long that
// took. Close releases everything.
type Driver interface {
	Name() string
	Open(spec SessionSpec, n int) (admitted int, err error)
	Ingest(session int, points [][]float64) error
	Query(session int) error
	Crash() error
	Recover() (RecoveryTiming, error)
	Close() error
}

// nowSeconds measures a step under the harness clock.
func nowSeconds(clock Clock, from time.Time) float64 {
	return clock.Now().Sub(from).Seconds()
}
