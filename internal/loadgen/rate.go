package loadgen

import (
	"sync"
	"time"
)

// Clock abstracts wall time so the rate controller is testable under a
// fake clock and the scenarios can bound themselves without real
// sleeps in unit tests.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// RealClock is the production clock.
type RealClock struct{}

// Now returns time.Now.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep calls time.Sleep.
func (RealClock) Sleep(d time.Duration) { time.Sleep(d) }

// FakeClock is a deterministic manual clock: Sleep advances it
// instantly. Safe for concurrent use so paced goroutines can share it
// in tests.
type FakeClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewFakeClock starts a fake clock at an arbitrary fixed origin.
func NewFakeClock() *FakeClock {
	return &FakeClock{now: time.Unix(1_000_000, 0)}
}

// Now returns the fake time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances the fake time by d without blocking.
func (c *FakeClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Pacer holds a point stream at a target rate: after Wait(n) returns,
// the caller may send n more points without exceeding rate points/sec
// measured from the pacer's start. The schedule is absolute — the i-th
// point's due time is start + i/rate — so a caller that falls behind
// (the system under test is the bottleneck) is never asked to sleep,
// and the achieved-vs-offered gap becomes the saturation signal the
// throughput scenario reads. Not safe for concurrent use; each session
// goroutine paces itself.
type Pacer struct {
	rate  float64 // points per second; <= 0 means unpaced
	clock Clock
	start time.Time
	sent  int64
}

// NewPacer returns a pacer over clock (nil = RealClock) at rate
// points/sec (<= 0 = unpaced: Wait never sleeps).
func NewPacer(rate float64, clock Clock) *Pacer {
	if clock == nil {
		clock = RealClock{}
	}
	return &Pacer{rate: rate, clock: clock, start: clock.Now()}
}

// Wait blocks until n more points are due, then accounts them.
func (p *Pacer) Wait(n int) {
	if p.rate > 0 {
		due := p.start.Add(time.Duration(float64(p.sent) / p.rate * float64(time.Second)))
		if d := due.Sub(p.clock.Now()); d > 0 {
			p.clock.Sleep(d)
		}
	}
	p.sent += int64(n)
}

// Sent returns the points accounted so far.
func (p *Pacer) Sent() int64 { return p.sent }

// Elapsed returns the time since the pacer started.
func (p *Pacer) Elapsed() time.Duration { return p.clock.Now().Sub(p.start) }
