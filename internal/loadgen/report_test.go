package loadgen

import (
	"bytes"
	"sort"
	"testing"
)

func sampleReport() *Report {
	return &Report{
		Schema:  ReportSchema,
		Profile: "test",
		Corpus:  CorpusSpec{Shape: ShapeMixture, Dim: 6, Clusters: 8, Seed: 1},
		Session: SessionSpec{Dim: 6, K: 8, ChunkPoints: 256, WindowChunks: 4, Seed: 1},
		Drivers: []DriverReport{
			{
				Driver: "engine",
				Throughput: &ThroughputResult{
					Sessions: 4, CeilingPPS: 100000, Saturated: true,
					Steps: []ThroughputStep{{OfferedPPS: 100000, AchievedPPS: 100000, Passed: true}},
				},
				Latency: &LatencyResult{
					Sessions: 4, OfferedPPS: 1000, AchievedPPS: 990,
					Ingest:  LatencySummary{Count: 10, P99Ms: 1.5},
					Query:   LatencySummary{Count: 5, P99Ms: 0.5},
					Queries: 5,
				},
				Degradation: &DegradationResult{
					OfferedSessions: 8, AdmittedSessions: 4, RefusedSessions: 4, AchievedPPS: 500,
				},
				Recovery: &RecoveryResult{
					Sessions: 4, PrefillPoints: 512, ReadySeconds: 0.01, QuerySeconds: 0.02,
				},
			},
		},
	}
}

// The committed baseline must be byte-stable: marshaling the same
// document twice, or a decode/re-encode round trip, yields identical
// bytes, so regenerating an unchanged report never dirties git.
func TestReportJSONByteStable(t *testing.T) {
	r := sampleReport()
	r.BuildGates()
	a, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two marshals of one report differ")
	}
	parsed, err := ParseReport(a)
	if err != nil {
		t.Fatal(err)
	}
	c, err := parsed.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Fatal("decode/re-encode round trip changed the bytes")
	}
	if a[len(a)-1] != '\n' {
		t.Fatal("report does not end in a newline")
	}
}

func TestBuildGates(t *testing.T) {
	r := sampleReport()
	r.BuildGates()
	want := map[string]string{
		"engine_ceiling_pps":            "higher",
		"engine_ingest_p99_ms":          "lower",
		"engine_query_p99_ms":           "lower",
		"engine_degraded_achieved_pps":  "higher",
		"engine_recovery_ready_seconds": "lower",
		"engine_recovery_query_seconds": "lower",
	}
	if len(r.Gates) != len(want) {
		t.Fatalf("got %d gates, want %d: %+v", len(r.Gates), len(want), r.Gates)
	}
	for _, g := range r.Gates {
		if want[g.Metric] != g.Direction {
			t.Errorf("gate %s: direction %q, want %q", g.Metric, g.Direction, want[g.Metric])
		}
	}
	if !sort.SliceIsSorted(r.Gates, func(i, j int) bool { return r.Gates[i].Metric < r.Gates[j].Metric }) {
		t.Error("gates are not sorted by metric")
	}
	// A driver with zero queries must not emit a query-latency gate.
	r.Drivers[0].Latency.Query.Count = 0
	r.BuildGates()
	for _, g := range r.Gates {
		if g.Metric == "engine_query_p99_ms" {
			t.Error("query p99 gate emitted with zero queries")
		}
	}
}

func TestReportValidate(t *testing.T) {
	good := sampleReport()
	good.BuildGates()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}

	r := sampleReport()
	r.Schema = "streamkm.load-report/v0"
	if err := r.Validate(); err == nil {
		t.Error("wrong schema accepted")
	}

	r = sampleReport()
	r.Drivers = append(r.Drivers, DriverReport{Driver: "engine"})
	if err := r.Validate(); err == nil {
		t.Error("duplicate driver accepted")
	}

	r = sampleReport()
	r.Drivers = nil
	if err := r.Validate(); err == nil {
		t.Error("empty driver list accepted")
	}

	r = sampleReport()
	r.Gates = []Gate{{Metric: "x", Value: 1, Direction: "sideways"}}
	if err := r.Validate(); err == nil {
		t.Error("bad gate direction accepted")
	}

	if _, err := ParseReport([]byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
}
