package loadgen

import (
	"math"
	"testing"
	"time"
)

// Under a fake clock the pacer's absolute schedule is exact: after
// waiting for N points at R points/sec, the clock has advanced to the
// last point's due time, (N-batch)/R after start.
func TestPacerHoldsTargetRate(t *testing.T) {
	clock := NewFakeClock()
	p := NewPacer(1000, clock)
	const batch, batches = 10, 100
	for i := 0; i < batches; i++ {
		p.Wait(batch)
	}
	if got := p.Sent(); got != batch*batches {
		t.Fatalf("Sent() = %d, want %d", got, batch*batches)
	}
	// The final Wait slept until 990 points were due (the schedule
	// gates entry, not completion): 990/1000 s.
	want := 990 * time.Millisecond
	if got := p.Elapsed(); got != want {
		t.Fatalf("Elapsed() = %v, want %v", got, want)
	}
	rate := float64(p.Sent()) / (p.Elapsed() + 10*time.Millisecond).Seconds()
	if math.Abs(rate-1000) > 1 {
		t.Fatalf("achieved rate %.1f pps, want ~1000", rate)
	}
}

// A caller already behind schedule is never made to sleep: offered load
// stays honest when the system under test is the bottleneck.
func TestPacerNeverSleepsWhenBehind(t *testing.T) {
	clock := NewFakeClock()
	p := NewPacer(1000, clock)
	p.Wait(100)                  // due immediately; no sleep
	clock.Sleep(5 * time.Second) // simulate a slow system under test
	before := clock.Now()
	p.Wait(100)
	if got := clock.Now().Sub(before); got != 0 {
		t.Fatalf("pacer slept %v while behind schedule", got)
	}
}

func TestPacerUnpaced(t *testing.T) {
	clock := NewFakeClock()
	p := NewPacer(0, clock)
	for i := 0; i < 1000; i++ {
		p.Wait(100)
	}
	if p.Elapsed() != 0 {
		t.Fatalf("unpaced pacer advanced the clock by %v", p.Elapsed())
	}
}

func TestFakeClockSleepAdvances(t *testing.T) {
	clock := NewFakeClock()
	t0 := clock.Now()
	clock.Sleep(3 * time.Second)
	clock.Sleep(-time.Second) // negative sleeps must not rewind time
	if got := clock.Now().Sub(t0); got != 3*time.Second {
		t.Fatalf("fake clock advanced %v, want 3s", got)
	}
}
