// Package loadgen is the production-scale load harness: a deterministic
// corpus generator plus a rate-controlled replayer that drives the
// clustering engine (in-process) and the streamkmd daemon (over HTTP)
// through capacity scenarios — throughput ceiling, latency under load,
// governor degradation, and crash recovery — and emits a versioned
// streamkm.load-report/v1 document. The kernel bench gate answers "did
// a hot loop regress?"; this package answers the system questions the
// paper's premise raises: how many points per second and sessions does
// the engine sustain under a relentless, memory-bounded stream, what
// does an interleaved snapshot query cost at p99, and how fast does a
// killed daemon return to ready.
package loadgen

import (
	"fmt"

	"streamkm/internal/dataset"
	"streamkm/internal/rng"
)

// Corpus shapes. Each is a different stress on the chunk-size/quality
// trade-off: a stationary mixture is the paper's own workload, drift
// moves the ground truth under the window, burst violates the uniform
// arrival assumption, and adversarial feeds the degenerate inputs
// (duplicates, extreme outliers) that break naive summaries.
const (
	ShapeMixture     = "mixture"     // stationary Gaussian mixture (the paper's cell model)
	ShapeDrift       = "drift"       // component means translate linearly with stream position
	ShapeBurst       = "burst"       // periodic windows where a single component dominates
	ShapeAdversarial = "adversarial" // duplicates runs + far outliers over a base mixture
)

// CorpusSpec fully determines a corpus: equal specs generate
// bit-identical point streams, per session, forever.
type CorpusSpec struct {
	Shape    string // one of the Shape* constants (default mixture)
	Dim      int    // point dimensionality (default 6, the paper's)
	Clusters int    // latent mixture components (default 8)
	Seed     uint64 // master seed; session i derives its own generator
}

func (s CorpusSpec) withDefaults() CorpusSpec {
	if s.Shape == "" {
		s.Shape = ShapeMixture
	}
	if s.Dim <= 0 {
		s.Dim = 6
	}
	if s.Clusters <= 0 {
		s.Clusters = 8
	}
	return s
}

// Validate rejects unknown shapes before any generation happens.
func (s CorpusSpec) Validate() error {
	switch s.withDefaults().Shape {
	case ShapeMixture, ShapeDrift, ShapeBurst, ShapeAdversarial:
		return nil
	default:
		return fmt.Errorf("loadgen: unknown corpus shape %q", s.Shape)
	}
}

// Corpus hands out deterministic per-session point streams. It is
// stateless after construction; streams own all mutable state, so
// concurrent sessions never contend.
type Corpus struct {
	spec CorpusSpec
}

// NewCorpus validates the spec and returns the corpus.
func NewCorpus(spec CorpusSpec) (*Corpus, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Corpus{spec: spec.withDefaults()}, nil
}

// Spec returns the (defaulted) spec the corpus generates from.
func (c *Corpus) Spec() CorpusSpec { return c.spec }

// Dim returns the point dimensionality.
func (c *Corpus) Dim() int { return c.spec.Dim }

// Stream returns session i's point stream, positioned at the start.
// The stream is deterministic in (spec, session): re-creating it
// replays the identical points, which is what makes a crash-recovery
// drill's "re-ingest the same stream" step meaningful.
func (c *Corpus) Stream(session int) *PointStream {
	// splitmix-style decorrelation of the per-session seed so adjacent
	// sessions don't share low-bit structure.
	seed := c.spec.Seed + uint64(session)*0x9e3779b97f4a7c15
	r := rng.New(seed)
	mix := mustCellMixture(c.spec, r)
	s := &PointStream{
		shape: c.spec.Shape,
		dim:   c.spec.Dim,
		mix:   mix,
		rng:   r,
	}
	switch c.spec.Shape {
	case ShapeDrift:
		// One drift velocity per dimension, a few percent of the
		// separation scale per 1000 points: over a typical window the
		// ground truth visibly moves without teleporting.
		s.drift = make([]float64, c.spec.Dim)
		for j := range s.drift {
			s.drift[j] = (r.Float64()*2 - 1) * 0.5e-3 * corpusSeparation
		}
	}
	return s
}

// corpusSeparation mirrors dataset.DefaultCellSpec's mean-separation
// scale; drift velocities and outlier magnitudes are expressed in it.
const corpusSeparation = 12.0

func mustCellMixture(spec CorpusSpec, r *rng.RNG) *dataset.Mixture {
	mix, err := dataset.NewCellMixture(dataset.CellSpec{
		Dim:         spec.Dim,
		Clusters:    spec.Clusters,
		Spread:      1.0,
		Separation:  corpusSeparation,
		WeightSkew:  0.5,
		NoiseFrac:   0.02,
		NoiseSpread: 2.5 * corpusSeparation,
	}, r)
	if err != nil {
		// CorpusSpec.Validate plus withDefaults make every CellSpec
		// field legal; a failure here is a programming error.
		panic(fmt.Sprintf("loadgen: cell mixture: %v", err))
	}
	return mix
}

// PointStream generates one session's points in order. Not safe for
// concurrent use; each session goroutine owns its stream.
type PointStream struct {
	shape string
	dim   int
	mix   *dataset.Mixture
	rng   *rng.RNG
	pos   int // points generated so far

	drift   []float64 // ShapeDrift: per-dimension velocity
	dupLeft int       // ShapeAdversarial: remaining copies of dup
	dup     []float64
}

// Pos returns the number of points generated so far.
func (s *PointStream) Pos() int { return s.pos }

// Next fills dst with the stream's next len(dst) points, allocating
// each point slice (batches cross API boundaries that retain them).
func (s *PointStream) Next(dst [][]float64) {
	for i := range dst {
		p := make([]float64, s.dim)
		s.fill(p)
		dst[i] = p
	}
}

// Batch returns the next n points.
func (s *PointStream) Batch(n int) [][]float64 {
	out := make([][]float64, n)
	s.Next(out)
	return out
}

func (s *PointStream) fill(p []float64) {
	switch s.shape {
	case ShapeDrift:
		s.mix.SampleInto(s.rng, p)
		for j := range p {
			p[j] += s.drift[j] * float64(s.pos)
		}
	case ShapeBurst:
		// Every 1000 points, a 200-point burst re-draws from a single
		// component by rejection-free trick: sample, then collapse to
		// component 0's neighborhood by blending toward its mean.
		if s.pos%1000 >= 800 {
			c := s.mix.Component(0)
			for j := range p {
				p[j] = c.Mean[j] + c.StdDev[j]*s.rng.NormFloat64()
			}
		} else {
			s.mix.SampleInto(s.rng, p)
		}
	case ShapeAdversarial:
		switch {
		case s.dupLeft > 0:
			// A run of byte-identical points: stresses empty-cluster
			// reseeding and degenerate within-chunk variance.
			copy(p, s.dup)
			s.dupLeft--
		case s.pos%257 == 0:
			// A far outlier, ~20 separations out along a random axis.
			s.mix.SampleInto(s.rng, p)
			axis := s.rng.Intn(s.dim)
			sign := 1.0
			if s.rng.Float64() < 0.5 {
				sign = -1
			}
			p[axis] += sign * 20 * corpusSeparation
		case s.pos%113 == 0:
			// Start a duplicate run of 16 copies of this point.
			s.mix.SampleInto(s.rng, p)
			if s.dup == nil {
				s.dup = make([]float64, s.dim)
			}
			copy(s.dup, p)
			s.dupLeft = 15
		default:
			s.mix.SampleInto(s.rng, p)
		}
	default: // ShapeMixture
		s.mix.SampleInto(s.rng, p)
	}
	s.pos++
}
