package loadgen

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"
)

// DaemonConfig shapes a DaemonDriver. Exactly one of BaseURL (an
// already-running server, which Crash/Recover refuse to touch) or Bin
// (a streamkmd binary the driver spawns, kills, and respawns itself)
// must be set.
type DaemonConfig struct {
	// BaseURL points at an existing HTTP API, e.g. an httptest server
	// in unit tests. No process management happens in this mode.
	BaseURL string
	// Bin is the streamkmd binary to spawn against StateDir.
	Bin string
	// StateDir is the spawned daemon's state directory (required with
	// Bin; the driver never deletes it — recovery needs it).
	StateDir string
	// MemBudget and MaxSessions are passed to the spawned daemon
	// (-mem-budget / -max-sessions); zero means the daemon default.
	MemBudget   int64
	MaxSessions int
	// StartTimeout bounds waiting for the spawned daemon to announce
	// its address (0 = 30s).
	StartTimeout time.Duration
	// Logf receives driver log lines (nil = silent).
	Logf func(format string, args ...any)
}

func (c DaemonConfig) startTimeout() time.Duration {
	if c.StartTimeout <= 0 {
		return 30 * time.Second
	}
	return c.StartTimeout
}

func (c DaemonConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// DaemonDriver drives a streamkmd daemon over its HTTP API: the full
// serving path — JSON decode, admission control, ingest queue, WAL
// fsync — is on the measured path, which is exactly the point.
type DaemonDriver struct {
	cfg    DaemonConfig
	client *http.Client

	mu       sync.Mutex
	base     string // current API base URL, e.g. http://127.0.0.1:41234
	cmd      *exec.Cmd
	spec     SessionSpec
	admitted int
	crashed  bool
}

// NewDaemonDriver validates the config and, in Bin mode, spawns the
// daemon.
func NewDaemonDriver(cfg DaemonConfig) (*DaemonDriver, error) {
	if (cfg.BaseURL == "") == (cfg.Bin == "") {
		return nil, errors.New("loadgen: set exactly one of DaemonConfig.BaseURL or DaemonConfig.Bin")
	}
	if cfg.Bin != "" && cfg.StateDir == "" {
		return nil, errors.New("loadgen: DaemonConfig.Bin requires StateDir")
	}
	// The default transport keeps only 2 idle conns per host; a load
	// generator running dozens of concurrent sessions against one
	// daemon would churn through ephemeral ports and measure its own
	// connection setup instead of the server.
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConns = 512
	transport.MaxIdleConnsPerHost = 512
	d := &DaemonDriver{
		cfg:    cfg,
		client: &http.Client{Timeout: 60 * time.Second, Transport: transport},
		base:   strings.TrimRight(cfg.BaseURL, "/"),
	}
	if cfg.Bin != "" {
		if err := d.spawn(); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Name identifies the driver in reports.
func (d *DaemonDriver) Name() string { return "daemon" }

// spawn starts the daemon and parses its bound address off stdout
// (the same announcement scripts/daemon_chaos.sh keys on).
func (d *DaemonDriver) spawn() error {
	args := []string{"-listen", "127.0.0.1:0", "-state", d.cfg.StateDir}
	if d.cfg.MemBudget > 0 {
		args = append(args, "-mem-budget", fmt.Sprint(d.cfg.MemBudget))
	}
	if d.cfg.MaxSessions > 0 {
		args = append(args, "-max-sessions", fmt.Sprint(d.cfg.MaxSessions))
	}
	cmd := exec.Command(d.cfg.Bin, args...)
	cmd.Stderr = io.Discard
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	addrc := make(chan string, 1)
	go func() {
		defer io.Copy(io.Discard, stdout) // keep draining after the announcement
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			fields := strings.Fields(sc.Text())
			// "streamkmd listening on 127.0.0.1:41234 (state ..., ...)"
			for i, f := range fields {
				if f == "on" && i+1 < len(fields) {
					addrc <- fields[i+1]
					return
				}
			}
		}
		close(addrc)
	}()
	select {
	case addr, ok := <-addrc:
		if !ok {
			cmd.Process.Kill()
			cmd.Wait()
			return errors.New("loadgen: daemon exited before announcing its address")
		}
		d.mu.Lock()
		d.base = "http://" + addr
		d.cmd = cmd
		d.mu.Unlock()
		d.cfg.logf("loadgen: daemon up at http://%s (pid %d)", addr, cmd.Process.Pid)
		return nil
	case <-time.After(d.cfg.startTimeout()):
		cmd.Process.Kill()
		cmd.Wait()
		return errors.New("loadgen: daemon never announced its address")
	}
}

// do issues one JSON request and maps the daemon's refusal statuses
// onto the harness sentinels.
func (d *DaemonDriver) do(method, path string, body any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	d.mu.Lock()
	base := d.base
	d.mu.Unlock()
	req, err := http.NewRequest(method, base+path, rd)
	if err != nil {
		return err
	}
	resp, err := d.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	switch {
	case resp.StatusCode < 300:
		return nil
	case resp.StatusCode == http.StatusServiceUnavailable:
		return fmt.Errorf("%w: %s", ErrBackpressure, strings.TrimSpace(string(msg)))
	case resp.StatusCode == http.StatusConflict && bytes.Contains(msg, []byte("not enough data")):
		return ErrNotReady
	default:
		return fmt.Errorf("loadgen: %s %s: status %d: %s", method, path, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
}

func loadSessionID(i int) string { return fmt.Sprintf("load-%06d", i) }

// Open creates up to n windowed sessions, stopping at the first 503
// (the daemon's admission control refusing) and reporting how many
// were admitted.
func (d *DaemonDriver) Open(spec SessionSpec, n int) (int, error) {
	d.mu.Lock()
	d.spec = spec
	d.admitted = 0
	d.mu.Unlock()
	admitted := 0
	for i := 0; i < n; i++ {
		body := map[string]any{
			"id":            loadSessionID(i),
			"kind":          "windowed",
			"dim":           spec.Dim,
			"k":             spec.K,
			"chunk_points":  spec.ChunkPoints,
			"window_chunks": spec.WindowChunks,
			"seed":          spec.Seed + uint64(i)*0x9e3779b97f4a7c15,
		}
		if spec.FsyncEvery > 0 {
			body["fsync_every"] = spec.FsyncEvery
		}
		err := d.do(http.MethodPost, "/v1/sessions", body)
		if errors.Is(err, ErrBackpressure) {
			break
		}
		if err != nil {
			return admitted, err
		}
		admitted++
	}
	d.mu.Lock()
	d.admitted = admitted
	d.mu.Unlock()
	return admitted, nil
}

// Ingest posts one batch to a session.
func (d *DaemonDriver) Ingest(session int, points [][]float64) error {
	return d.do(http.MethodPost, "/v1/sessions/"+loadSessionID(session)+"/points",
		map[string]any{"points": points})
}

// Query reads a session's windowed snapshot.
func (d *DaemonDriver) Query(session int) error {
	return d.do(http.MethodGet, "/v1/sessions/"+loadSessionID(session)+"/clusters", nil)
}

// Crash SIGKILLs the spawned daemon — no drain, no flush.
func (d *DaemonDriver) Crash() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cmd == nil {
		return errors.New("loadgen: Crash requires a spawned daemon (DaemonConfig.Bin)")
	}
	if err := d.cmd.Process.Kill(); err != nil {
		return err
	}
	d.cmd.Wait()
	d.cmd = nil
	d.crashed = true
	return nil
}

// Recover respawns the daemon on the same state directory and times
// the climb back: ReadySeconds until /readyz answers 200 (WAL replay
// and checkpoint decode happen before the listener exists, so this is
// the real recovery cost), QuerySeconds until every admitted session
// answers a snapshot query again.
func (d *DaemonDriver) Recover() (RecoveryTiming, error) {
	var t RecoveryTiming
	d.mu.Lock()
	if !d.crashed {
		d.mu.Unlock()
		return t, errors.New("loadgen: Recover without Crash")
	}
	d.crashed = false
	d.mu.Unlock()
	start := time.Now()
	if err := d.spawn(); err != nil {
		return t, err
	}
	deadline := start.Add(d.cfg.startTimeout())
	for {
		if err := d.do(http.MethodGet, "/readyz", nil); err == nil {
			break
		}
		if time.Now().After(deadline) {
			return t, errors.New("loadgen: recovered daemon never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.ReadySeconds = time.Since(start).Seconds()
	d.mu.Lock()
	admitted := d.admitted
	d.mu.Unlock()
	for i := 0; i < admitted; i++ {
		for {
			err := d.Query(i)
			if err == nil || errors.Is(err, ErrNotReady) {
				break
			}
			if time.Now().After(deadline) {
				return t, fmt.Errorf("loadgen: session %d not answering after recovery: %v", i, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	t.QuerySeconds = time.Since(start).Seconds()
	t.Sessions = admitted
	return t, nil
}

// Close drains the spawned daemon with SIGTERM (falling back to
// SIGKILL if it will not die); BaseURL mode is a no-op.
func (d *DaemonDriver) Close() error {
	d.mu.Lock()
	cmd := d.cmd
	d.cmd = nil
	d.mu.Unlock()
	if cmd == nil {
		return nil
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		return err
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		<-done
		return errors.New("loadgen: daemon ignored SIGTERM; killed")
	}
}

// BaseURL returns the driver's current API base (tests and logging).
func (d *DaemonDriver) BaseURL() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.base
}

// BuildDaemon compiles cmd/streamkmd into dir and returns the binary
// path — the same `go build` idiom scripts/daemon_chaos.sh uses, so
// cmd/loadgen and check.sh need no pre-built artifact.
func BuildDaemon(dir string) (string, error) {
	bin := dir + string(os.PathSeparator) + "streamkmd"
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/streamkmd")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("loadgen: building streamkmd: %v\n%s", err, out)
	}
	return bin, nil
}
