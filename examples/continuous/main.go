// continuous clusters an unbounded data stream with bounded memory using
// the push-based StreamClusterer: points arrive one at a time, each full
// memory budget worth of points is reduced to weighted centroids and
// discarded (the "one look" regime of §3), and the final merge produces
// the overall representation. The stream drifts halfway through, and the
// final centroids reflect both phases.
//
//	go run ./examples/continuous
package main

import (
	"fmt"
	"log"
	"sort"

	"streamkm"
	"streamkm/internal/rng"
)

func main() {
	const (
		dim    = 4
		total  = 50000
		budget = 2000 // points that fit in "volatile memory"
	)
	// k = 16 over 4 latent clusters: the merge step seeds with the k
	// heaviest partial centroids (§3.3), and a generous k makes it very
	// likely both stream phases contribute seeds.
	sc, err := streamkm.NewStreamClusterer(dim, streamkm.Options{
		K:           16,
		Restarts:    5,
		ChunkPoints: budget,
		Seed:        9,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: clusters near ±20 in dims 0-1. Phase 2 (drift): clusters
	// move to ±60 in dims 2-3.
	r := rng.New(3)
	emit := func(base []float64) []float64 {
		p := make([]float64, dim)
		for d := range p {
			p[d] = base[d] + r.NormFloat64()
		}
		return p
	}
	phase1 := [][]float64{{-20, -20, 0, 0}, {20, 20, 0, 0}}
	phase2 := [][]float64{{0, 0, -60, 60}, {0, 0, 60, -60}}
	for i := 0; i < total; i++ {
		bases := phase1
		if i >= total/2 {
			bases = phase2
		}
		if err := sc.Push(emit(bases[i%2])); err != nil {
			log.Fatal(err)
		}
		if (i+1)%10000 == 0 {
			fmt.Printf("consumed %6d points, %3d chunk reductions so far (state is O(k x chunks), never O(N))\n",
				sc.Pushed(), sc.Partials())
		}
	}

	res, err := sc.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal representation: %d centroids from %d partitions, merge MSE %.3f\n",
		len(res.Centroids), res.Partitions, res.MergeMSE)
	fmt.Printf("partial time %v, merge time %v\n", res.PartialTime, res.MergeTime)

	type row struct {
		w float64
		c []float64
	}
	rows := make([]row, 0, len(res.Centroids))
	for i, c := range res.Centroids {
		rows = append(rows, row{w: res.Weights[i], c: c})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].w > rows[j].w })
	fmt.Println("\ncentroids by weight (both stream phases must appear):")
	for _, r := range rows {
		fmt.Printf("  w=%7.0f  (%7.2f %7.2f %7.2f %7.2f)\n", r.w, r.c[0], r.c[1], r.c[2], r.c[3])
	}
}
