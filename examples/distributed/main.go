// distributed shows the parallelization story of §3.4: the same cell is
// clustered with 1, 2, 4 and 8 cloned partial operators, demonstrating
// (a) the speed-up from cloning the expensive operator and (b) that the
// result is bit-identical regardless of clone count, because chunk RNGs
// are derived before dispatch and the collective merge is order-
// insensitive. It then contrasts the Fig. 2 baselines on the same cell.
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"

	"streamkm/internal/baseline"
	"streamkm/internal/core"
	"streamkm/internal/dataset"
)

func main() {
	spec := dataset.DefaultCellSpec()
	spec.Clusters = 30
	cell, err := dataset.GenerateCell(spec, 40000, 13)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cell: %d points, dim %d\n\n", cell.Len(), cell.Dim())

	// Partial/merge with cloned partial operators. Clones are
	// goroutines: wall-clock speed-up tracks min(clones, cores), so on
	// a single-core machine expect ~1.0x while the result stays
	// bit-identical.
	fmt.Printf("machine has %d CPU(s); speed-up saturates at min(clones, CPUs)\n\n", runtime.NumCPU())
	fmt.Println("partial/merge k-means, 8 chunks, varying clone count:")
	fmt.Printf("%-8s %12s %10s %12s\n", "clones", "elapsed", "speedup", "merge MSE")
	var base float64
	for _, clones := range []int{1, 2, 4, 8} {
		res, err := core.ClusterParallel(context.Background(), cell, core.Options{
			K: 40, Restarts: 5, Splits: 8, Seed: 21, Parallelism: clones,
		})
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = float64(res.Elapsed)
		}
		fmt.Printf("%-8d %12v %9.2fx %12.2f\n",
			clones, res.Elapsed.Round(1e6), base/float64(res.Elapsed), res.MergeMSE)
	}

	// The Fig. 2 baselines on the same cell.
	fmt.Println("\nFig. 2 baselines on the same cell:")
	cfg := baseline.SerialConfig{K: 40, Restarts: 5, Seed: 21}
	serial, err := baseline.Serial(cell, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  serial:   %12v  MSE %.2f\n", serial.Elapsed.Round(1e6), serial.MSE)

	methodB, err := baseline.MethodB(context.Background(), cell, cfg, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  method B: %12v  MSE %.2f  (restarts in parallel)\n",
		methodB.Elapsed.Round(1e6), methodB.MSE)

	methodC, err := baseline.MethodC(context.Background(), cell, baseline.SerialConfig{K: 40, Seed: 21}, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  method C: %12v  MSE %.2f  (%d messages between master and 4 slaves)\n",
		methodC.Elapsed.Round(1e6), methodC.MSE, methodC.Messages)

	fmt.Println("\nnote: methods A-C still require a full point set per worker in RAM;")
	fmt.Println("partial/merge bounds per-operator memory by the chunk size instead.")
}
