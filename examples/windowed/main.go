// windowed demonstrates the sliding-window extension: the clustering
// covers only the W most recent memory-budget chunks, so when the stream
// drifts, old structure expires from the answer instead of polluting it
// forever — the continuous-query behaviour of the related work (§2.2)
// built from the paper's own partial/merge operators.
//
//	go run ./examples/windowed
package main

import (
	"fmt"
	"log"

	"streamkm"
	"streamkm/internal/rng"
)

func main() {
	w, err := streamkm.NewWindowedClusterer(2, streamkm.WindowedOptions{
		K:            6,
		ChunkPoints:  2000, // memory budget per chunk
		WindowChunks: 4,    // the answer covers the last 8000 points
		Restarts:     5,
		Seed:         3,
	})
	if err != nil {
		log.Fatal(err)
	}

	r := rng.New(11)
	regimes := [][][2]float64{
		{{-30, -30}, {30, 30}},          // regime A
		{{-30, 30}, {30, -30}, {0, 90}}, // regime B: rotated + new mode
		{{100, 100}, {140, 100}},        // regime C: moved entirely
	}
	for phase, centers := range regimes {
		for i := 0; i < 12000; i++ {
			c := centers[i%len(centers)]
			p := []float64{c[0] + r.NormFloat64(), c[1] + r.NormFloat64()}
			if err := w.Push(p); err != nil {
				log.Fatal(err)
			}
		}
		snap, err := w.Snapshot()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("after regime %c (%d points consumed, %d chunks expired):\n",
			'A'+phase, w.Consumed(), w.Expired())
		for i, c := range snap.Centroids {
			if snap.Weights[i] < 500 {
				continue // skip minor centroids for readability
			}
			fmt.Printf("  w=%6.0f at (%7.2f, %7.2f)\n", snap.Weights[i], c[0], c[1])
		}
	}
	fmt.Println("\neach snapshot reflects only the current regime: expired chunks")
	fmt.Println("no longer contribute, unlike the unbounded StreamClusterer.")
}
