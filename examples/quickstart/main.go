// Quickstart: cluster an in-memory point set with partial/merge k-means
// through the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"streamkm"
)

func main() {
	// Build 3000 points around five well-separated 2-D centers, with a
	// cheap deterministic jitter.
	centers := [][2]float64{{0, 0}, {40, 0}, {0, 40}, {40, 40}, {20, 80}}
	state := uint64(1)
	jitter := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return (float64(state>>11)/(1<<53) - 0.5) * 3
	}
	points := make([][]float64, 0, 3000)
	for i := 0; i < 3000; i++ {
		c := centers[i%len(centers)]
		points = append(points, []float64{c[0] + jitter(), c[1] + jitter()})
	}

	// Cluster with k=10 (comfortably above the latent structure), 5
	// memory-sized partitions, 10 restarts per partition — the paper's
	// configuration in miniature.
	res, err := streamkm.Cluster(points, streamkm.Options{
		K:        10,
		Restarts: 10,
		Splits:   5,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("clustered %d points into %d centroids across %d partitions\n",
		len(points), len(res.Centroids), res.Partitions)
	fmt.Printf("merge MSE %.3f, point MSE %.3f, total time %v\n",
		res.MergeMSE, res.PointMSE, res.Elapsed)
	fmt.Println("\nheaviest centroids:")
	for i, c := range res.Centroids {
		if res.Weights[i] < 200 {
			continue
		}
		fmt.Printf("  (%6.2f, %6.2f) representing %4.0f points\n", c[0], c[1], res.Weights[i])
	}

	// Sanity: every latent center has a nearby centroid.
	for _, want := range centers {
		best := math.Inf(1)
		for _, c := range res.Centroids {
			d := math.Hypot(c[0]-want[0], c[1]-want[1])
			if d < best {
				best = d
			}
		}
		fmt.Printf("latent center (%g, %g): nearest centroid at distance %.2f\n",
			want[0], want[1], best)
	}
}
