// misrcompress reproduces the paper's motivating application end to end:
// simulate a MISR-like instrument sweeping the earth in swaths (Fig. 1),
// bucket the measurements into 1°x1° grid cells, cluster each cell with
// partial/merge k-means through the query engine, and compress each cell
// into a multivariate non-equi-depth histogram (§1). Finally a range
// query is answered from the compressed representation alone.
//
//	go run ./examples/misrcompress
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"streamkm/internal/engine"
	"streamkm/internal/grid"
	"streamkm/internal/vector"
)

func main() {
	// 1. Simulate the instrument: 16 orbits cover the globe in stripes.
	spec := grid.DefaultSwathSpec()
	spec.Orbits = 16
	spec.PointsPerOrbit = 40000
	model := grid.GeoGradientModel{Dim: spec.Dim, Noise: 0.8, Scale: 10}
	measurements, err := grid.SimulateSwaths(spec, model, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d measurements over %d orbits\n", len(measurements), spec.Orbits)

	// 2. Bucket into grid cells; keep the densest ones for the demo.
	cellMap, err := grid.Bucketize(measurements)
	if err != nil {
		log.Fatal(err)
	}
	sets, err := grid.BucketizeToSets(cellMap)
	if err != nil {
		log.Fatal(err)
	}
	var cells []engine.Cell
	for key, set := range sets {
		// Enough points to seed k=12 with headroom; the swath geometry
		// concentrates points near the orbit's turnaround latitudes.
		if set.Len() >= 60 {
			cells = append(cells, engine.Cell{Key: key, Points: set})
		}
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Points.Len() != cells[j].Points.Len() {
			return cells[i].Points.Len() > cells[j].Points.Len()
		}
		return cells[i].Key.String() < cells[j].Key.String()
	})
	if len(cells) > 6 {
		cells = cells[:6]
	}
	if len(cells) == 0 {
		log.Fatal("no sufficiently dense cells; increase -per-orbit density")
	}
	fmt.Printf("clustering the %d densest cells\n", len(cells))

	// 3. Cluster every cell through the engine: the optimizer sizes
	// chunks for a deliberately tight 12 KB operator budget (so cells
	// actually get partitioned) and clones partial operators across 4
	// workers.
	q := engine.Query{K: 12, Restarts: 5, Seed: 11, Compress: true}
	results, plan, stats, err := engine.Run(context.Background(), cells, q, engine.Resources{
		MemoryBytes: 12 << 10,
		Workers:     4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan.Explain())

	// 4. The engine's compress stage already built a histogram per cell;
	// answer a range query from the compressed form alone.
	fmt.Printf("\n%-10s %7s %7s %12s %14s\n", "cell", "points", "chunks", "compression", "est. mass[0]>0")
	for i, r := range results {
		h := r.Histogram
		n := cells[i].Points.Len()
		// Range query: how many measurements have attribute 0 above the
		// field midpoint? Estimated from buckets only.
		lo := vector.New(h.Dim())
		hi := vector.New(h.Dim())
		for d := 0; d < h.Dim(); d++ {
			lo[d], hi[d] = -1e9, 1e9
		}
		lo[0] = 0
		est, err := h.EstimateRange(lo, hi)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %7d %7d %11.1fx %14.0f\n",
			r.Key, n, r.Partitions, h.CompressionRatio(n), est)
	}
	fmt.Printf("\npipeline processed %d cells / %d chunks in %v\n",
		stats.Cells, stats.Chunks, stats.Elapsed)
	for _, op := range stats.Registry.All() {
		fmt.Println(" ", op)
	}
}
