package streamkm

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"streamkm/internal/core"
	"streamkm/internal/dataset"
	"streamkm/internal/dist"
	"streamkm/internal/engine"
	"streamkm/internal/fault"
	"streamkm/internal/govern"
	"streamkm/internal/grid"
	"streamkm/internal/metrics"
	"streamkm/internal/obs"
	"streamkm/internal/rng"
	"streamkm/internal/stream"
)

// Options configures a clustering run. The zero value is not runnable;
// at minimum set K. Defaults: Restarts 10 (the paper's R), Splits chosen
// from ChunkPoints or 5 when neither is set, random slicing, collective
// merge.
type Options struct {
	// K is the number of clusters (the paper's experiments use 40).
	K int
	// Restarts is the number of random seed sets tried per partition
	// (0 = 10, the paper's choice).
	Restarts int
	// Splits fixes the number of partitions p. Mutually exclusive with
	// ChunkPoints; if both are zero, Splits defaults to 5.
	Splits int
	// ChunkPoints sizes partitions by a memory budget (maximum points
	// per chunk) instead of a fixed count.
	ChunkPoints int
	// Parallelism is the number of partial-operator clones used by
	// ClusterContext (0 = 1).
	Parallelism int
	// Workers, when >= 2, fans each partial step's Restarts across that
	// many goroutines. Orthogonal to Parallelism (which spreads chunks
	// over operator clones): Workers speeds up one chunk's restarts.
	// Results are bit-identical to serial execution for any value.
	Workers int
	// Strategy selects the slicing strategy: "random" (default),
	// "salami", or "spatial".
	Strategy string
	// MergeMode selects "collective" (default) or "incremental".
	MergeMode string
	// MergeSolver selects the Lloyd kernel the merge stage runs:
	// "lloyd" (default — full-batch iterations to the ΔMSE fixpoint) or
	// "minibatch" (Sculley-style mini-batch gradient steps with
	// per-center learning rates; faster on large merge pools, answers
	// within a small MSE factor of full Lloyd). Deterministic for a
	// fixed Seed either way.
	MergeSolver string
	// Epsilon is the ΔMSE convergence threshold (0 = 1e-9).
	Epsilon float64
	// MaxIterations caps Lloyd iterations per run (0 = 500).
	MaxIterations int
	// Seed makes runs reproducible; equal seeds give equal results.
	Seed uint64
	// Accelerate selects Hamerly's bound-based Lloyd iteration: the
	// same fixpoints with far fewer distance computations for large K.
	Accelerate bool
	// Summarizer selects the chunk-summarizer operator that reduces each
	// partition to a weighted summary: "kmeans" (default — the paper's
	// partial k-means), "ecvq" (entropy-constrained VQ, adaptive cluster
	// count), or "coreset" (StreamKM++-style coreset tree).
	Summarizer string
	// SeedMethod selects the k-means seeding strategy where Lloyd runs:
	// "random" (default for partial steps), "heaviest" (default for the
	// merge), "kmeans++" (D²-weighted sampling), or "kmeans||" (the
	// scalable k-means|| oversampling scheme). Applies to the partial
	// stage when Summarizer is "kmeans" and always to the merge stage.
	SeedMethod string
	// CoresetSize is the number of weighted points the "coreset"
	// summarizer keeps per chunk (0 = 10*K).
	CoresetSize int
	// ECVQMaxK caps the "ecvq" summarizer's adaptive cluster count per
	// chunk (0 = 2*K); ECVQLambda is its rate-distortion trade-off
	// (0 = pure distortion, plain k-means behavior).
	ECVQMaxK   int
	ECVQLambda float64
	// Retry, when non-nil, makes StreamClusterer re-attempt a failed
	// chunk reduction instead of surfacing the first error. Each attempt
	// replays the chunk's own pre-derived random state, so a run that
	// needed retries produces centroids bit-identical to one that did
	// not.
	Retry *RetryPolicy
	// OnDroppedRecord, when non-nil, turns StreamClusterer.Push into a
	// lenient boundary: points with the wrong dimensionality or
	// non-finite coordinates are dropped, counted (see Dropped), and
	// reported here instead of failing the stream. Nil keeps the strict
	// behavior of rejecting wrong-dimension points with an error.
	OnDroppedRecord func(point []float64, err error)

	// Deadline bounds a ClusterGoverned run's wall-clock time. When it
	// fires the run fails with context.DeadlineExceeded — or, with
	// AllowDegraded, returns the work completed so far (0 = unlimited).
	Deadline time.Duration
	// ProgressTimeout arms ClusterGoverned's stall watchdog: a pipeline
	// stage holding pending work while making no progress for this long
	// is cancelled and retried, then failed — or degraded under
	// AllowDegraded (0 = no watchdog).
	ProgressTimeout time.Duration
	// MemoryBudget caps ClusterGoverned's in-flight working set in
	// bytes: the governor deterministically shrinks the chunk size and
	// operator fan-out until the point data in flight fits (0 =
	// unlimited).
	MemoryBudget int64
	// AllowDegraded opts ClusterGoverned into the anytime contract: a
	// permanently failing partition, an expired deadline, or a terminal
	// stall yields the clustering of every surviving partition plus a
	// Result.Degraded quality report, instead of an error.
	AllowDegraded bool
	// RemoteWorkers lists streamkm-worker addresses ("host:port").
	// When non-empty, ClusterGoverned ships each partition to one of
	// these workers (the paper's §3.4 option-1 scale-up) instead of
	// computing it in-process; the merge stays local. Results are
	// bit-identical to the in-process run. Dead workers are evicted and
	// their partitions re-leased to survivors; Options.Retry bounds the
	// re-lease budget, and AllowDegraded governs what happens when every
	// worker is lost.
	RemoteWorkers []string

	// inject places a fault injector in front of every governed partial
	// step (in-package governor tests only).
	inject *fault.Injector
}

// RetryPolicy bounds re-attempts of a failed operation. The zero value
// never retries.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the first failure.
	MaxRetries int
	// BaseBackoff is the first retry's delay, doubling each attempt
	// (0 = retry immediately).
	BaseBackoff time.Duration
	// MaxBackoff caps the delay (0 = 64x BaseBackoff).
	MaxBackoff time.Duration
}

// stream converts the facade policy to the engine's retry policy. The
// facade documents BaseBackoff 0 as "retry immediately", which the
// stream policy expresses as a negative base (its own zero means 1ms).
func (p RetryPolicy) stream() stream.RetryPolicy {
	sp := stream.RetryPolicy{
		MaxRetries:  p.MaxRetries,
		BaseBackoff: p.BaseBackoff,
		MaxBackoff:  p.MaxBackoff,
	}
	if p.BaseBackoff <= 0 {
		sp.BaseBackoff = -1
	}
	return sp
}

func (p RetryPolicy) backoff(attempt int) time.Duration {
	return p.stream().Backoff(attempt, 0)
}

// Result is the outcome of a clustering run.
type Result struct {
	// Centroids are the final k cluster centers.
	Centroids [][]float64
	// Weights is the number of points represented by each centroid.
	Weights []float64
	// MergeMSE is the paper's quality metric for partial/merge runs:
	// the weighted MSE of the partial-stage centroids against the final
	// centroids (E_pm normalized by total weight).
	MergeMSE float64
	// PointMSE is the mean squared distance of the original points to
	// the final centroids. Only set when the raw points were available
	// (HasPointMSE).
	PointMSE    float64
	HasPointMSE bool
	// Partitions is the number of chunks used.
	Partitions int
	// PartialTime, MergeTime, Elapsed break down the run's wall time.
	PartialTime time.Duration
	MergeTime   time.Duration
	Elapsed     time.Duration
	// Degraded is non-nil when a ClusterGoverned run with AllowDegraded
	// returned a partial answer; it reports exactly what was lost. Nil
	// means the result is complete.
	Degraded *Degraded
	// Report is the engine's unified observability report — per-stage
	// counters, latency histograms, governor decisions — rendered as a
	// schema-stable document (obs.ReportSchema). Only ClusterGoverned
	// sets it: the other entry points bypass the instrumented engine.
	Report *obs.Report
}

// Degraded is the quality report attached to a partial result: how much
// input the answer is missing and why the run degraded. The centroids
// it accompanies are exactly the clustering of the surviving
// partitions — bit-identical to a run over only those partitions.
type Degraded struct {
	// DroppedPartitions counts partitions missing from the answer.
	DroppedPartitions int
	// PointsLost is the number of input points in those partitions.
	PointsLost int
	// DeadlineExceeded reports that the wall-clock deadline forced the
	// degradation.
	DeadlineExceeded bool
	// Stalls counts pipeline attempts cancelled by the stall watchdog.
	Stalls int
}

// String renders the report as a one-line structured summary.
func (d *Degraded) String() string {
	return fmt.Sprintf("degraded: deadline=%t stalls=%d dropped_partitions=%d points_lost=%d",
		d.DeadlineExceeded, d.Stalls, d.DroppedPartitions, d.PointsLost)
}

// ParseStrategy maps a strategy name to the internal constant.
func ParseStrategy(s string) (dataset.SplitStrategy, error) {
	switch s {
	case "", "random":
		return dataset.SplitRandom, nil
	case "salami":
		return dataset.SplitSalami, nil
	case "spatial":
		return dataset.SplitSpatial, nil
	default:
		return 0, fmt.Errorf("streamkm: unknown strategy %q (want random, salami, or spatial)", s)
	}
}

// ParseMergeMode maps a merge-mode name to the internal constant.
func ParseMergeMode(s string) (core.MergeMode, error) {
	switch s {
	case "", "collective":
		return core.MergeCollective, nil
	case "incremental":
		return core.MergeIncremental, nil
	default:
		return 0, fmt.Errorf("streamkm: unknown merge mode %q (want collective or incremental)", s)
	}
}

func (o Options) toCore() (core.Options, error) {
	if o.K <= 0 {
		return core.Options{}, fmt.Errorf("streamkm: K must be positive, got %d", o.K)
	}
	if o.Splits > 0 && o.ChunkPoints > 0 {
		return core.Options{}, errors.New("streamkm: set Splits or ChunkPoints, not both")
	}
	strat, err := ParseStrategy(o.Strategy)
	if err != nil {
		return core.Options{}, err
	}
	mode, err := ParseMergeMode(o.MergeMode)
	if err != nil {
		return core.Options{}, err
	}
	opts := core.Options{
		K:             o.K,
		Restarts:      o.Restarts,
		Splits:        o.Splits,
		ChunkPoints:   o.ChunkPoints,
		Strategy:      strat,
		MergeMode:     mode,
		MergeSolver:   o.MergeSolver,
		Epsilon:       o.Epsilon,
		MaxIterations: o.MaxIterations,
		Seed:          o.Seed,
		Parallelism:   o.Parallelism,
		Accelerate:    o.Accelerate,
		Workers:       o.Workers,
		Summarizer:    o.Summarizer,
		SeedMethod:    o.SeedMethod,
		CoresetSize:   o.CoresetSize,
		ECVQMaxK:      o.ECVQMaxK,
		ECVQLambda:    o.ECVQLambda,
	}
	if opts.Restarts == 0 {
		opts.Restarts = 10
	}
	if opts.Splits == 0 && opts.ChunkPoints == 0 {
		opts.Splits = 5
	}
	if err := opts.Validate(); err != nil {
		return core.Options{}, err
	}
	return opts, nil
}

func toSet(points [][]float64) (*dataset.Set, error) {
	if len(points) == 0 {
		return nil, errors.New("streamkm: no points")
	}
	dim := len(points[0])
	set, err := dataset.NewSet(dim)
	if err != nil {
		return nil, err
	}
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("streamkm: point %d has dim %d, want %d", i, len(p), dim)
		}
		if err := set.Add(p); err != nil {
			return nil, err
		}
	}
	return set, nil
}

func fromCore(res *core.Result) *Result {
	out := &Result{
		Weights:     res.Weights,
		MergeMSE:    res.MergeMSE,
		PointMSE:    res.PointMSE,
		HasPointMSE: true,
		Partitions:  res.Partitions,
		PartialTime: res.PartialTime,
		MergeTime:   res.MergeTime,
		Elapsed:     res.Elapsed,
	}
	out.Centroids = make([][]float64, len(res.Centroids))
	for i, c := range res.Centroids {
		out.Centroids[i] = c
	}
	return out
}

// Cluster runs partial/merge k-means over the points with all partial
// steps executed serially.
func Cluster(points [][]float64, opts Options) (*Result, error) {
	copts, err := opts.toCore()
	if err != nil {
		return nil, err
	}
	set, err := toSet(points)
	if err != nil {
		return nil, err
	}
	res, err := core.Cluster(set, copts)
	if err != nil {
		return nil, err
	}
	return fromCore(res), nil
}

// ClusterContext runs partial/merge k-means with Parallelism cloned
// partial operators on a stream plan, honoring ctx cancellation. The
// result is identical to Cluster for the same Options.
func ClusterContext(ctx context.Context, points [][]float64, opts Options) (*Result, error) {
	copts, err := opts.toCore()
	if err != nil {
		return nil, err
	}
	set, err := toSet(points)
	if err != nil {
		return nil, err
	}
	res, err := core.ClusterParallel(ctx, set, copts)
	if err != nil {
		return nil, err
	}
	return fromCore(res), nil
}

// ClusterGoverned runs partial/merge k-means through the query engine
// under the resource governor: Options.Deadline, ProgressTimeout, and
// MemoryBudget bound the run's time, liveness, and memory, and
// AllowDegraded lets it return a typed partial result instead of an
// error when a bound is hit (see Result.Degraded). Options.Retry
// supervises individual partitions. For a fixed Seed and fixed budgets
// the result is deterministic; it is computed by the engine's pipelined
// executor, so it is not guaranteed to equal Cluster's output for the
// same Options.
func ClusterGoverned(ctx context.Context, points [][]float64, opts Options) (*Result, error) {
	copts, err := opts.toCore()
	if err != nil {
		return nil, err
	}
	set, err := toSet(points)
	if err != nil {
		return nil, err
	}
	chunk := copts.ChunkPoints
	if chunk <= 0 {
		// Splits p expresses the same partitioning as a per-chunk budget.
		chunk = (set.Len() + copts.Splits - 1) / copts.Splits
	}
	if chunk < copts.K {
		chunk = copts.K
	}
	clones := opts.Parallelism
	if clones < 1 {
		clones = 1
	}
	queueCap := 2 * clones
	if queueCap < 4 {
		queueCap = 4
	}
	q := engine.Query{
		K:             copts.K,
		Restarts:      copts.Restarts,
		Epsilon:       copts.Epsilon,
		MaxIterations: copts.MaxIterations,
		Strategy:      copts.Strategy,
		MergeMode:     copts.MergeMode,
		MergeSolver:   copts.MergeSolver,
		Seed:          copts.Seed,
		Accelerate:    copts.Accelerate,
		Workers:       copts.Workers,
		Summarizer:    copts.Summarizer,
		SeedMethod:    copts.SeedMethod,
		CoresetSize:   copts.CoresetSize,
		ECVQMaxK:      copts.ECVQMaxK,
		ECVQLambda:    copts.ECVQLambda,
	}
	plan := engine.PhysicalPlan{
		ChunkPoints:   chunk,
		PartialClones: clones,
		QueueCapacity: queueCap,
		Rationale:     "facade governed run",
	}
	eopts := []engine.ExecOption{engine.WithBudget(govern.Budget{
		Deadline:        opts.Deadline,
		ProgressTimeout: opts.ProgressTimeout,
		MemoryBytes:     opts.MemoryBudget,
	})}
	if opts.Retry != nil {
		eopts = append(eopts, engine.WithRetry(opts.Retry.stream()))
	}
	if opts.AllowDegraded {
		eopts = append(eopts, engine.WithDegradedResults())
	}
	if opts.inject != nil {
		eopts = append(eopts, engine.WithFaultInjection(opts.inject))
	}
	if len(opts.RemoteWorkers) > 0 {
		// One registry shared by the pool and the engine, so the run
		// report carries the per-worker dist_* families too.
		reg := obs.NewRegistry()
		poolRetry := stream.RetryPolicy{MaxRetries: len(opts.RemoteWorkers)}
		if opts.Retry != nil {
			poolRetry = opts.Retry.stream()
		}
		pool, err := dist.NewPool(ctx, dist.PoolConfig{
			Addrs:           opts.RemoteWorkers,
			Retry:           poolRetry,
			ProgressTimeout: opts.ProgressTimeout,
			Seed:            copts.Seed,
			Obs:             reg,
		})
		if err != nil {
			return nil, err
		}
		defer pool.Close()
		eopts = append(eopts, engine.WithRemoteWorkers(pool), engine.WithObserver(reg))
	}
	cells := []engine.Cell{{Key: grid.CellKey{}, Points: set}}
	results, stats, err := engine.NewExec(q, plan, eopts...).Execute(ctx, cells)
	if err != nil {
		return nil, err
	}
	if len(results) == 0 {
		// Even an anytime answer needs at least one surviving partition.
		return nil, fmt.Errorf("streamkm: %s: every partition was lost", stats.Degraded)
	}
	r := results[0]
	out := &Result{
		Weights:     r.Result.Weights,
		MergeMSE:    r.Result.MSE,
		PointMSE:    r.PointMSE,
		HasPointMSE: true,
		Partitions:  r.Partitions,
		PartialTime: r.PartialTime,
		MergeTime:   r.Result.Elapsed,
		Elapsed:     stats.Elapsed,
	}
	out.Centroids = make([][]float64, len(r.Result.Centroids))
	for i, c := range r.Result.Centroids {
		out.Centroids[i] = c
	}
	out.Report = stats.Report()
	if rep := stats.Degraded; rep != nil {
		out.Degraded = &Degraded{
			DroppedPartitions: len(rep.DroppedChunks),
			PointsLost:        rep.PointsLost,
			DeadlineExceeded:  rep.DeadlineExceeded,
			Stalls:            rep.Stalls,
		}
	}
	return out, nil
}

// StreamClusterer clusters an unbounded stream under a fixed memory
// budget: points are buffered up to ChunkPoints, each full buffer is
// reduced to k weighted centroids by partial k-means and discarded (the
// "one look" regime), and Finish merges all retained centroids into the
// final representation. State is O(k * chunks), never O(N).
type StreamClusterer struct {
	opts     Options
	copts    core.Options
	summ     core.Summarizer
	dim      int
	buffer   *dataset.Set
	parts    []*dataset.WeightedSet
	rng      *rng.RNG
	pushed   int
	dropped  int
	retries  int
	partialT time.Duration
	finished bool
	// faultHook, when non-nil, runs before each chunk reduction attempt
	// (in-package fault-injection tests only).
	faultHook func(attempt int) error
}

// NewStreamClusterer returns a clusterer for dim-dimensional points.
// ChunkPoints must be set (it is the memory budget) and at least K.
func NewStreamClusterer(dim int, opts Options) (*StreamClusterer, error) {
	if opts.Splits > 0 {
		return nil, errors.New("streamkm: StreamClusterer uses ChunkPoints, not Splits")
	}
	if opts.ChunkPoints <= 0 {
		return nil, errors.New("streamkm: StreamClusterer requires ChunkPoints > 0")
	}
	if opts.ChunkPoints < opts.K {
		return nil, fmt.Errorf("streamkm: ChunkPoints %d below K %d", opts.ChunkPoints, opts.K)
	}
	copts, err := opts.toCore()
	if err != nil {
		return nil, err
	}
	summ, err := copts.NewSummarizer()
	if err != nil {
		return nil, err
	}
	buffer, err := dataset.NewSet(dim)
	if err != nil {
		return nil, err
	}
	return &StreamClusterer{
		opts:   opts,
		copts:  copts,
		summ:   summ,
		dim:    dim,
		buffer: buffer,
		rng:    rng.New(opts.Seed),
	}, nil
}

// Pushed returns the number of points consumed so far.
func (s *StreamClusterer) Pushed() int { return s.pushed }

// Partials returns the number of chunk reductions performed so far.
func (s *StreamClusterer) Partials() int { return len(s.parts) }

// Dropped returns the number of records discarded by the lenient input
// boundary (always 0 unless Options.OnDroppedRecord is set).
func (s *StreamClusterer) Dropped() int { return s.dropped }

// Retries returns the number of chunk-reduction re-attempts performed
// under Options.Retry.
func (s *StreamClusterer) Retries() int { return s.retries }

// Push consumes one point. When the buffer reaches ChunkPoints it is
// reduced to weighted centroids and released. With
// Options.OnDroppedRecord set, malformed points (wrong dimension or
// non-finite coordinates) are dropped and reported instead of erroring.
func (s *StreamClusterer) Push(point []float64) error {
	if s.finished {
		return errors.New("streamkm: Push after Finish")
	}
	if len(point) != s.dim {
		err := fmt.Errorf("streamkm: point dim %d, want %d", len(point), s.dim)
		if s.opts.OnDroppedRecord != nil {
			s.drop(point, err)
			return nil
		}
		return err
	}
	if s.opts.OnDroppedRecord != nil {
		for d, x := range point {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				s.drop(point, fmt.Errorf("streamkm: non-finite value %g in dimension %d", x, d))
				return nil
			}
		}
	}
	p := make([]float64, s.dim)
	copy(p, point)
	if err := s.buffer.Add(p); err != nil {
		return err
	}
	s.pushed++
	if s.buffer.Len() >= s.opts.ChunkPoints {
		return s.flush()
	}
	return nil
}

func (s *StreamClusterer) drop(point []float64, err error) {
	s.dropped++
	cp := make([]float64, len(point))
	copy(cp, point)
	s.opts.OnDroppedRecord(cp, err)
}

// flush reduces the buffered chunk to weighted centroids, retrying per
// Options.Retry. The chunk's RNG is split from the stream's generator
// exactly once, then copied per attempt, so retried runs replay the
// identical random sequence and the final centroids stay bit-identical
// to a fault-free run.
func (s *StreamClusterer) flush() error {
	chunkRNG := s.rng.Split()
	var policy RetryPolicy
	if s.opts.Retry != nil {
		policy = *s.opts.Retry
	}
	var pr *core.PartialResult
	_, err := policy.stream().Attempts(context.Background(), 0,
		func(int, error) { s.retries++ },
		func(attempt int) error {
			attemptRNG := *chunkRNG
			if s.faultHook != nil {
				if err := s.faultHook(attempt); err != nil {
					return err
				}
			}
			var err error
			pr, err = s.summ.Summarize(s.buffer, &attemptRNG)
			return err
		})
	if err != nil {
		return err
	}
	s.parts = append(s.parts, pr.Centroids)
	s.partialT += pr.Elapsed
	fresh, err := dataset.NewSet(s.dim)
	if err != nil {
		return err
	}
	s.buffer = fresh
	return nil
}

// Finish flushes any buffered tail and merges all weighted centroids
// into the final clustering. The clusterer cannot be reused afterwards.
// PointMSE is not available (the raw points were discarded), so
// HasPointMSE is false.
func (s *StreamClusterer) Finish() (*Result, error) {
	if s.finished {
		return nil, errors.New("streamkm: Finish called twice")
	}
	s.finished = true
	start := time.Now()
	if s.buffer.Len() > 0 {
		if s.buffer.Len() >= s.copts.K {
			if err := s.flush(); err != nil {
				return nil, err
			}
		} else if len(s.parts) == 0 {
			return nil, fmt.Errorf("streamkm: only %d points pushed, need at least K=%d", s.pushed, s.copts.K)
		} else {
			// Tail smaller than k: keep the raw points as unit-weight
			// centroids so no data is dropped.
			tail := dataset.Unweighted(s.buffer)
			s.parts = append(s.parts, tail)
		}
	}
	if len(s.parts) == 0 {
		return nil, errors.New("streamkm: no data pushed")
	}
	// MergeConfig leaves the Seeder nil; MergeKMeans defaults it to the
	// heaviest-point seeder, exactly what this path always used.
	mr, err := core.MergeKMeans(s.parts, s.copts.MergeConfig(), s.rng.Split())
	if err != nil {
		return nil, err
	}
	out := &Result{
		Weights:     mr.Weights,
		MergeMSE:    mr.MSE,
		Partitions:  len(s.parts),
		PartialTime: s.partialT,
		MergeTime:   mr.Elapsed,
		Elapsed:     s.partialT + time.Since(start),
	}
	out.Centroids = make([][]float64, len(mr.Centroids))
	for i, c := range mr.Centroids {
		out.Centroids[i] = c
	}
	return out, nil
}

// MSEOf computes the mean squared distance from points to their nearest
// centroid — a convenience for callers that kept (a sample of) the raw
// data and want the apples-to-apples quality number.
func MSEOf(points [][]float64, centroids [][]float64) (float64, error) {
	set, err := toSet(points)
	if err != nil {
		return 0, err
	}
	cs := make([]dataset.Point, len(centroids))
	for i, c := range centroids {
		cs[i] = c
	}
	return metrics.MSE(set, cs)
}
