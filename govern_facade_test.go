package streamkm

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"streamkm/internal/fault"
)

func sameCentroids(t *testing.T, a, b *Result) {
	t.Helper()
	if len(a.Centroids) != len(b.Centroids) {
		t.Fatalf("centroid counts differ: %d vs %d", len(a.Centroids), len(b.Centroids))
	}
	for i := range a.Centroids {
		if a.Weights[i] != b.Weights[i] {
			t.Fatalf("centroid %d: weight %v != %v", i, a.Weights[i], b.Weights[i])
		}
		for d := range a.Centroids[i] {
			if a.Centroids[i][d] != b.Centroids[i][d] {
				t.Fatalf("centroid %d dim %d: %v != %v", i, d, a.Centroids[i][d], b.Centroids[i][d])
			}
		}
	}
}

func TestClusterGovernedHealthyRun(t *testing.T) {
	pts := blobPoints(600)
	opts := Options{
		K: 3, Restarts: 5, ChunkPoints: 150, Seed: 9,
		Deadline:        time.Minute,
		ProgressTimeout: 10 * time.Second,
		MemoryBudget:    1 << 30,
		AllowDegraded:   true,
	}
	res, err := ClusterGoverned(context.Background(), pts, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != nil {
		t.Fatalf("healthy run degraded: %v", res.Degraded)
	}
	if len(res.Centroids) != 3 || res.Partitions != 4 || !res.HasPointMSE {
		t.Fatalf("unexpected result shape: %+v", res)
	}
	// The facade surfaces the engine's unified run report.
	if res.Report == nil {
		t.Fatal("governed result has no observability report")
	}
	if res.Report.Schema != "streamkm.run-report/v1" {
		t.Fatalf("report schema = %q", res.Report.Schema)
	}
	if res.Report.Cells != 1 || res.Report.Chunks != 4 {
		t.Fatalf("report cells/chunks = %d/%d, want 1/4", res.Report.Cells, res.Report.Chunks)
	}
	if got := res.Report.Metrics.Counter("engine_chunks_done", ""); got != 4 {
		t.Fatalf("engine_chunks_done = %d, want 4", got)
	}
	// Governed runs must be deterministic for a fixed seed and budgets.
	again, err := ClusterGoverned(context.Background(), pts, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameCentroids(t, res, again)
}

func TestClusterGovernedDegradesOnPermanentFailure(t *testing.T) {
	pts := blobPoints(600)
	opts := Options{K: 3, Restarts: 5, ChunkPoints: 150, Seed: 9, AllowDegraded: true}
	opts.inject = fault.ErrorNth(2)
	res, err := ClusterGoverned(context.Background(), pts, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded == nil {
		t.Fatal("no degradation report despite a permanently failed partition")
	}
	if res.Degraded.DroppedPartitions != 1 || res.Degraded.PointsLost != 150 {
		t.Fatalf("report = %+v, want 1 partition / 150 points lost", res.Degraded)
	}
	if res.Partitions != 3 {
		t.Fatalf("Partitions = %d, want the 3 survivors", res.Partitions)
	}
	if !strings.Contains(res.Degraded.String(), "dropped_partitions=1") {
		t.Fatalf("summary %q lacks the dropped count", res.Degraded)
	}

	t.Run("without AllowDegraded the same failure is loud", func(t *testing.T) {
		loud := opts
		loud.AllowDegraded = false
		loud.inject = fault.ErrorNth(2)
		if _, err := ClusterGoverned(context.Background(), pts, loud); !errors.Is(err, fault.ErrInjected) {
			t.Fatalf("err = %v, want the injected failure", err)
		}
	})
}

func TestClusterGovernedMemoryBudgetStillCompletes(t *testing.T) {
	pts := blobPoints(600)
	base := Options{K: 3, Restarts: 5, ChunkPoints: 300, Seed: 9}
	full, err := ClusterGoverned(context.Background(), pts, base)
	if err != nil {
		t.Fatal(err)
	}
	tight := base
	// dim=2 points cost 2*8+48 = 64 bytes in the governor's model; this
	// budget holds half a planned chunk, so chunks must shrink.
	tight.MemoryBudget = 150 * 64
	got, err := ClusterGoverned(context.Background(), pts, tight)
	if err != nil {
		t.Fatal(err)
	}
	if got.Degraded != nil {
		t.Fatalf("memory pressure alone must not degrade the answer: %v", got.Degraded)
	}
	if got.Partitions <= full.Partitions {
		t.Fatalf("governed run used %d partitions, unbudgeted %d; smaller chunks should mean more",
			got.Partitions, full.Partitions)
	}
	again, err := ClusterGoverned(context.Background(), pts, tight)
	if err != nil {
		t.Fatal(err)
	}
	sameCentroids(t, got, again)
}

func TestClusterGovernedStallRecovery(t *testing.T) {
	pts := blobPoints(600)
	opts := Options{
		K: 3, Restarts: 5, ChunkPoints: 150, Seed: 9,
		ProgressTimeout: 80 * time.Millisecond,
		Retry:           &RetryPolicy{MaxRetries: 1},
		AllowDegraded:   true,
	}
	opts.inject = fault.StallNth(2)
	res, err := ClusterGoverned(context.Background(), pts, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The wedged partition is cancelled by the watchdog; under
	// AllowDegraded the run answers either completely (stall recovered
	// by a retry of the plan) or degraded — never hangs, never errors.
	if res.Degraded != nil && res.Degraded.Stalls == 0 {
		t.Fatalf("degraded without a recorded stall: %+v", res.Degraded)
	}
	if len(res.Centroids) != 3 {
		t.Fatalf("centroids = %d, want 3", len(res.Centroids))
	}
}

func TestClusterGovernedValidation(t *testing.T) {
	if _, err := ClusterGoverned(context.Background(), blobPoints(10), Options{}); err == nil {
		t.Fatal("K=0 must fail")
	}
	if _, err := ClusterGoverned(context.Background(), nil, Options{K: 3}); err == nil {
		t.Fatal("no points must fail")
	}
}
