package streamkm

import (
	"context"
	"net"
	"testing"
	"time"

	"streamkm/internal/dist"
)

// TestClusterGovernedRemoteWorkers runs the facade against real
// loopback workers and checks the distributed answer is bit-identical
// to the in-process governed run — the facade-level statement of the
// §3.4 option-1 contract.
func TestClusterGovernedRemoteWorkers(t *testing.T) {
	pts := blobPoints(600)
	opts := Options{
		K: 3, Restarts: 5, ChunkPoints: 150, Seed: 9,
		Retry: &RetryPolicy{MaxRetries: 4, BaseBackoff: time.Millisecond},
	}
	local, err := ClusterGoverned(context.Background(), pts, opts)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrs := make([]string, 2)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		go dist.Serve(ctx, ln, dist.WorkerConfig{})
	}
	opts.RemoteWorkers = addrs
	remote, err := ClusterGoverned(context.Background(), pts, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameCentroids(t, local, remote)
	if remote.MergeMSE != local.MergeMSE || remote.PointMSE != local.PointMSE {
		t.Fatalf("MSE differs: %g/%g vs %g/%g",
			remote.MergeMSE, remote.PointMSE, local.MergeMSE, local.PointMSE)
	}
	// The run report carries the per-worker distributed families.
	if remote.Report == nil {
		t.Fatal("remote run has no report")
	}
	var done int64
	for _, addr := range addrs {
		done += remote.Report.Metrics.Counter("dist_chunks_done", addr)
	}
	if done != int64(remote.Partitions) {
		t.Fatalf("workers computed %d chunks, want %d", done, remote.Partitions)
	}
}

// TestClusterGovernedRemoteWorkersUnreachable: a pool with no reachable
// workers must fail fast with a clear error, not hang.
func TestClusterGovernedRemoteWorkersUnreachable(t *testing.T) {
	pts := blobPoints(300)
	opts := Options{
		K: 3, Restarts: 2, ChunkPoints: 150, Seed: 9,
		RemoteWorkers: []string{"127.0.0.1:1"},
		Retry:         &RetryPolicy{BaseBackoff: time.Millisecond},
	}
	start := time.Now()
	if _, err := ClusterGoverned(context.Background(), pts, opts); err == nil {
		t.Fatal("unreachable workers should fail the run")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("failure took %v; should fail fast", elapsed)
	}
}
