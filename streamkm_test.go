package streamkm

import (
	"context"
	"math"
	"testing"
)

// blobPoints builds points around well-separated 2-D centers.
func blobPoints(n int) [][]float64 {
	centers := [][2]float64{{-50, 0}, {50, 0}, {0, 80}}
	pts := make([][]float64, 0, n)
	// Cheap deterministic jitter without package imports.
	state := uint64(12345)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11)/(1<<53) - 0.5
	}
	for i := 0; i < n; i++ {
		c := centers[i%len(centers)]
		pts = append(pts, []float64{c[0] + next(), c[1] + next()})
	}
	return pts
}

func TestClusterBasic(t *testing.T) {
	pts := blobPoints(600)
	res, err := Cluster(pts, Options{K: 3, Restarts: 5, Splits: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 3 {
		t.Fatalf("centroids = %d", len(res.Centroids))
	}
	if !res.HasPointMSE {
		t.Fatal("in-memory run should report PointMSE")
	}
	if res.PointMSE > 1 {
		t.Fatalf("PointMSE = %g on clean blobs", res.PointMSE)
	}
	var w float64
	for _, x := range res.Weights {
		w += x
	}
	if math.Abs(w-600) > 1e-6 {
		t.Fatalf("weights sum %g", w)
	}
	if res.Partitions != 4 {
		t.Fatalf("Partitions = %d", res.Partitions)
	}
}

func TestClusterDefaults(t *testing.T) {
	// No Splits/ChunkPoints: defaults to 5 splits, 10 restarts.
	res, err := Cluster(blobPoints(500), Options{K: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partitions != 5 {
		t.Fatalf("default Partitions = %d, want 5", res.Partitions)
	}
}

func TestClusterValidation(t *testing.T) {
	pts := blobPoints(100)
	if _, err := Cluster(pts, Options{}); err == nil {
		t.Fatal("K=0 should error")
	}
	if _, err := Cluster(nil, Options{K: 2}); err == nil {
		t.Fatal("no points should error")
	}
	if _, err := Cluster(pts, Options{K: 2, Splits: 2, ChunkPoints: 10}); err == nil {
		t.Fatal("both Splits and ChunkPoints should error")
	}
	if _, err := Cluster(pts, Options{K: 2, Strategy: "zigzag"}); err == nil {
		t.Fatal("unknown strategy should error")
	}
	if _, err := Cluster(pts, Options{K: 2, MergeMode: "eager"}); err == nil {
		t.Fatal("unknown merge mode should error")
	}
	ragged := [][]float64{{1, 2}, {1}}
	if _, err := Cluster(ragged, Options{K: 1, Splits: 1}); err == nil {
		t.Fatal("ragged points should error")
	}
}

func TestClusterContextMatchesCluster(t *testing.T) {
	pts := blobPoints(400)
	opts := Options{K: 3, Restarts: 3, Splits: 4, Seed: 7, Parallelism: 3}
	a, err := Cluster(pts, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ClusterContext(context.Background(), pts, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.MergeMSE-b.MergeMSE) > 1e-12 {
		t.Fatalf("parallel result differs: %g vs %g", a.MergeMSE, b.MergeMSE)
	}
	for i := range a.Centroids {
		for d := range a.Centroids[i] {
			if a.Centroids[i][d] != b.Centroids[i][d] {
				t.Fatalf("centroid %d differs", i)
			}
		}
	}
}

func TestClusterContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ClusterContext(ctx, blobPoints(5000), Options{K: 3, Splits: 10, Seed: 1}); err == nil {
		t.Fatal("cancelled context should error")
	}
}

func TestStreamClustererBasic(t *testing.T) {
	// k above the 3 latent blobs: with k == blob count the heaviest-
	// weight merge seeding can start all seeds in one blob and Lloyd
	// stays in that local minimum — the paper avoids this regime by
	// using k = 40 over cells with fewer dominant modes.
	sc, err := NewStreamClusterer(2, Options{K: 6, Restarts: 3, ChunkPoints: 150, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pts := blobPoints(1000)
	for _, p := range pts {
		if err := sc.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	if sc.Pushed() != 1000 {
		t.Fatalf("Pushed = %d", sc.Pushed())
	}
	// 1000/150 = 6 full chunks before Finish
	if sc.Partials() != 6 {
		t.Fatalf("Partials = %d", sc.Partials())
	}
	res, err := sc.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 6 {
		t.Fatalf("centroids = %d", len(res.Centroids))
	}
	if res.HasPointMSE {
		t.Fatal("stream run cannot have PointMSE")
	}
	// 6 full + 1 tail partial
	if res.Partitions != 7 {
		t.Fatalf("Partitions = %d", res.Partitions)
	}
	var w float64
	for _, x := range res.Weights {
		w += x
	}
	if math.Abs(w-1000) > 1e-6 {
		t.Fatalf("weights sum %g, want 1000 (no data dropped)", w)
	}
	// External quality check with the kept raw points.
	mse, err := MSEOf(pts, res.Centroids)
	if err != nil {
		t.Fatal(err)
	}
	if mse > 1 {
		t.Fatalf("stream clustering MSE = %g", mse)
	}
}

func TestStreamClustererSmallTailKept(t *testing.T) {
	sc, err := NewStreamClusterer(2, Options{K: 3, Restarts: 2, ChunkPoints: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 102 points: one full chunk + 2-point tail below K.
	for _, p := range blobPoints(102) {
		if err := sc.Push(p); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sc.Finish()
	if err != nil {
		t.Fatal(err)
	}
	var w float64
	for _, x := range res.Weights {
		w += x
	}
	if math.Abs(w-102) > 1e-6 {
		t.Fatalf("tail points dropped: weight %g", w)
	}
}

func TestStreamClustererValidation(t *testing.T) {
	if _, err := NewStreamClusterer(2, Options{K: 3, Splits: 2, ChunkPoints: 100}); err == nil {
		t.Fatal("Splits should be rejected")
	}
	if _, err := NewStreamClusterer(2, Options{K: 3}); err == nil {
		t.Fatal("missing ChunkPoints should error")
	}
	if _, err := NewStreamClusterer(2, Options{K: 30, ChunkPoints: 10}); err == nil {
		t.Fatal("ChunkPoints < K should error")
	}
	sc, err := NewStreamClusterer(2, Options{K: 2, Restarts: 1, ChunkPoints: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Push([]float64{1}); err == nil {
		t.Fatal("wrong-dim push should error")
	}
	if _, err := sc.Finish(); err == nil {
		t.Fatal("Finish with no data should error")
	}
	if _, err := sc.Finish(); err == nil {
		t.Fatal("double Finish should error")
	}
	if err := sc.Push([]float64{1, 2}); err == nil {
		t.Fatal("Push after Finish should error")
	}
}

func TestStreamClustererTooFewPoints(t *testing.T) {
	sc, err := NewStreamClusterer(2, Options{K: 5, Restarts: 1, ChunkPoints: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := sc.Push([]float64{float64(i), 0}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sc.Finish(); err == nil {
		t.Fatal("3 points with K=5 should error")
	}
}

func TestStreamClustererDoesNotAliasCallerSlice(t *testing.T) {
	sc, err := NewStreamClusterer(1, Options{K: 1, Restarts: 1, ChunkPoints: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := []float64{1}
	if err := sc.Push(p); err != nil {
		t.Fatal(err)
	}
	p[0] = 999 // caller reuses the slice
	for i := 0; i < 4; i++ {
		if err := sc.Push([]float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sc.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Centroids[0][0]-1) > 1e-9 {
		t.Fatalf("centroid %g polluted by caller's slice reuse", res.Centroids[0][0])
	}
}

func TestClusterChunkPointsMode(t *testing.T) {
	pts := blobPoints(500)
	res, err := Cluster(pts, Options{K: 3, Restarts: 3, ChunkPoints: 120, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// 500/120 = 5 chunks (ceil)
	if res.Partitions != 5 {
		t.Fatalf("Partitions = %d, want 5", res.Partitions)
	}
	if res.PointMSE > 1 {
		t.Fatalf("PointMSE = %g", res.PointMSE)
	}
}

func TestClusterWithNamedStrategiesAndModes(t *testing.T) {
	pts := blobPoints(400)
	for _, strat := range []string{"", "random", "salami", "spatial"} {
		for _, mode := range []string{"", "collective", "incremental"} {
			res, err := Cluster(pts, Options{
				K: 3, Restarts: 2, Splits: 4, Seed: 9,
				Strategy: strat, MergeMode: mode,
			})
			if err != nil {
				t.Fatalf("strategy=%q mode=%q: %v", strat, mode, err)
			}
			if len(res.Centroids) != 3 {
				t.Fatalf("strategy=%q mode=%q: %d centroids", strat, mode, len(res.Centroids))
			}
		}
	}
}

func TestClusterAccelerated(t *testing.T) {
	pts := blobPoints(600)
	slow, err := Cluster(pts, Options{K: 6, Restarts: 3, Splits: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Cluster(pts, Options{K: 6, Restarts: 3, Splits: 4, Seed: 9, Accelerate: true})
	if err != nil {
		t.Fatal(err)
	}
	// Same seeds, same fixpoints on clean data: quality must agree
	// closely even though iteration accounting differs.
	if math.Abs(slow.PointMSE-fast.PointMSE) > 0.1*(1+slow.PointMSE) {
		t.Fatalf("accelerated PointMSE %g vs naive %g", fast.PointMSE, slow.PointMSE)
	}
}

func TestMSEOf(t *testing.T) {
	pts := [][]float64{{0}, {2}}
	mse, err := MSEOf(pts, [][]float64{{1}})
	if err != nil {
		t.Fatal(err)
	}
	if mse != 1 {
		t.Fatalf("MSEOf = %g", mse)
	}
	if _, err := MSEOf(nil, [][]float64{{1}}); err == nil {
		t.Fatal("no points should error")
	}
}

func TestParseHelpers(t *testing.T) {
	if _, err := ParseStrategy("salami"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Fatal("bogus strategy should error")
	}
	if _, err := ParseMergeMode("incremental"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseMergeMode("bogus"); err == nil {
		t.Fatal("bogus mode should error")
	}
}
