package streamkm

import (
	"bytes"
	"testing"
)

// FuzzCheckpoint drives both checkpoint decoders with arbitrary bytes.
// The decoders must never panic or allocate proportionally to hostile
// header counts, and any input they accept must re-encode and decode to
// the same state (a successful decode is a real clusterer, not a
// half-initialized one). The seed corpus holds valid v1 (stream) and v2
// (windowed) documents plus truncations; regressions found by fuzzing
// are committed under testdata/fuzz/FuzzCheckpoint.
func FuzzCheckpoint(f *testing.F) {
	sopts := Options{K: 3, Restarts: 1, ChunkPoints: 12, Seed: 9}
	sc, err := NewStreamClusterer(2, sopts)
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range blobPoints(30) {
		if err := sc.Push(p); err != nil {
			f.Fatal(err)
		}
	}
	var sbuf bytes.Buffer
	if err := sc.Checkpoint(&sbuf); err != nil {
		f.Fatal(err)
	}
	f.Add(sbuf.Bytes())
	f.Add(sbuf.Bytes()[:sbuf.Len()/2])

	wopts := WindowedOptions{K: 3, ChunkPoints: 12, WindowChunks: 2, Seed: 9, MergeSolver: "minibatch"}
	w, err := NewWindowedClusterer(2, wopts)
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range blobPoints(40) {
		if err := w.Push(p); err != nil {
			f.Fatal(err)
		}
	}
	var wbuf bytes.Buffer
	if err := w.Checkpoint(&wbuf); err != nil {
		f.Fatal(err)
	}
	f.Add(wbuf.Bytes())
	f.Add(wbuf.Bytes()[:wbuf.Len()-7])
	f.Add([]byte("SKMC"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if sc, err := ResumeStreamClusterer(bytes.NewReader(data), sopts); err == nil {
			var out bytes.Buffer
			if err := sc.Checkpoint(&out); err != nil {
				t.Fatalf("accepted checkpoint fails to re-encode: %v", err)
			}
			if _, err := ResumeStreamClusterer(bytes.NewReader(out.Bytes()), sopts); err != nil {
				t.Fatalf("re-encoded checkpoint fails to decode: %v", err)
			}
		}
		if w, err := ResumeWindowedClusterer(bytes.NewReader(data), wopts); err == nil {
			var out bytes.Buffer
			if err := w.Checkpoint(&out); err != nil {
				t.Fatalf("accepted windowed checkpoint fails to re-encode: %v", err)
			}
			if _, err := ResumeWindowedClusterer(bytes.NewReader(out.Bytes()), wopts); err != nil {
				t.Fatalf("re-encoded windowed checkpoint fails to decode: %v", err)
			}
		}
	})
}
