package main

import (
	"testing"

	"streamkm/internal/bench"
	"streamkm/internal/dataset"
)

// microWorkload keeps the CLI tests fast.
func microWorkload() bench.Workload {
	spec := dataset.DefaultCellSpec()
	spec.Clusters = 5
	return bench.Workload{
		Sizes:    []int{150, 400},
		Dim:      4,
		K:        5,
		Restarts: 1,
		Versions: 1,
		Seed:     3,
		Spec:     spec,
	}
}

func TestRunEveryExperiment(t *testing.T) {
	w := microWorkload()
	exps := []string{
		"table2", "figure6", "figure7", "figure8",
		"speedup", "merge-mode", "merge-seeding", "partial-seeding",
		"slicing", "ecvq", "accel", "memory", "chunk-size",
		"agreement", "distributed", "baselines",
	}
	for _, exp := range exps {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			if err := run(exp, w, 400, 2); err != nil {
				t.Fatalf("%s: %v", exp, err)
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nope", microWorkload(), 400, 2); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestPaperishCases(t *testing.T) {
	big := bench.PaperWorkload()
	cases := paperishCases(big)
	if len(cases) != 3 || cases[1].Splits != 5 || cases[2].Splits != 10 {
		t.Fatalf("paper cases wrong: %+v", cases)
	}
	small := microWorkload()
	cases = paperishCases(small)
	if len(cases) != 3 || cases[1].Splits != 2 || cases[2].Splits != 4 {
		t.Fatalf("quick cases wrong: %+v", cases)
	}
}
