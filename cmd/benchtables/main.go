// Command benchtables regenerates every table and figure of the paper's
// evaluation (§5) plus the ablations listed in DESIGN.md:
//
//	-exp table2          Table 2 (5-split vs 10-split vs serial)
//	-exp figure6/7/8     overall time / minimum MSE / partial time vs N
//	-exp speedup         E5: partial-operator clones 1..8 (in-process)
//	-exp memory          E6: peak operator state vs N
//	-exp distributed     E7: simulated network-of-PCs scale-up
//	-exp merge-mode      A1: collective vs incremental merge
//	-exp merge-seeding   A2: heaviest vs random vs kmeans++ merge seeds
//	-exp slicing         A3: random vs salami vs spatial slicing
//	-exp baselines       A4: vs serial, BIRCH, STREAM, methodC, mini-batch
//	-exp ecvq            A5: fixed-k vs ECVQ partial reduction
//	-exp accel           A6: naive vs Hamerly-accelerated Lloyd
//	-exp chunk-size      A7: quality/time vs memory budget
//	-exp partial-seeding A8: random vs kmeans++ chunk seeds
//	-exp agreement       A9: adjusted Rand index between algorithms
//	-exp restarts        A10: R-sweep (seed sets per partition)
//	-exp all             the paper exhibits plus A1-A5
//
// -json emits the rows machine-readably. By default a laptop-scale
// workload runs in seconds; -full switches to the paper's exact
// parameters (N up to 75 000, k = 40, R = 10, 5 versions), which takes
// considerably longer.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"streamkm/internal/bench"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment to run (see package comment)")
		full   = flag.Bool("full", false, "use the paper's full workload instead of the quick one")
		n      = flag.Int("n", 0, "override the cell size for single-cell experiments (0 = workload max)")
		splits = flag.Int("splits", 5, "split count for single-cell experiments")
		asJSON = flag.Bool("json", false, "emit rows as JSON instead of formatted tables (not for -exp all)")
	)
	flag.Parse()
	w := bench.QuickWorkload()
	if *full {
		w = bench.PaperWorkload()
	}
	size := *n
	if size == 0 {
		size = w.Sizes[len(w.Sizes)-1]
	}
	if err := run(*exp, w, size, *splits, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

func run(exp string, w bench.Workload, n, splits int, asJSON ...bool) error {
	jsonOut := len(asJSON) > 0 && asJSON[0]
	emit := func(title string, rows any, text string) error {
		if !jsonOut {
			if title != "" {
				fmt.Println(title)
			}
			fmt.Print(text)
			return nil
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rows)
	}
	ctx := context.Background()
	needTable2 := map[string]bool{"table2": true, "figure6": true, "figure7": true, "figure8": true, "all": true}
	var rows []bench.Table2Row
	if needTable2[exp] {
		var err error
		rows, err = bench.RunTable2(w, paperishCases(w))
		if err != nil {
			return err
		}
	}
	switch exp {
	case "table2":
		return emit("# Table 2: serial vs partial/merge k-means", rows, bench.FormatTable2(rows))
	case "figure6":
		f := bench.Figure6(rows)
		return emit("", f, bench.FormatFigure("Figure 6: overall execution time, serial vs partial/merge", f)+bench.ASCIIPlot("Figure 6: overall execution time, serial vs partial/merge", f, 64, 16))
	case "figure7":
		f := bench.Figure7(rows)
		return emit("", f, bench.FormatFigure("Figure 7: minimum MSE, serial vs partial/merge", f)+bench.ASCIIPlot("Figure 7: minimum MSE, serial vs partial/merge", f, 64, 16))
	case "figure8":
		f := bench.Figure8(rows)
		return emit("", f, bench.FormatFigure("Figure 8: partial k-means time, 5-split vs 10-split", f)+bench.ASCIIPlot("Figure 8: partial k-means time, 5-split vs 10-split", f, 64, 16))
	case "speedup":
		rows, err := speedupRows(ctx, w, n, splits)
		if err != nil {
			return err
		}
		return emit("# E5: speed-up with cloned partial operators", rows, bench.FormatSpeedup(rows))
	case "merge-mode":
		ab, err := bench.RunMergeModeAblation(w, n, splits)
		if err != nil {
			return err
		}
		return emit("", ab, bench.FormatAblation("A1: collective vs incremental merge", ab))
	case "merge-seeding":
		ab, err := bench.RunMergeSeedingAblation(w, n, splits)
		if err != nil {
			return err
		}
		return emit("", ab, bench.FormatAblation("A2: merge seeding strategies", ab))
	case "partial-seeding":
		ab, err := bench.RunPartialSeedingAblation(w, n, splits)
		if err != nil {
			return err
		}
		return emit("", ab, bench.FormatAblation("A8: partial-stage seeding strategies", ab))
	case "slicing":
		ab, err := bench.RunSlicingAblation(w, n, splits)
		if err != nil {
			return err
		}
		return emit("", ab, bench.FormatAblation("A3: slicing strategies", ab))
	case "restarts":
		rows, err := bench.RunRestartSweep(w, n, splits, []int{1, 2, 5, 10, 20})
		if err != nil {
			return err
		}
		return emit("# A10: restart-count sweep (seed sets per partition)", rows, bench.FormatRestarts(rows))
	case "agreement":
		rows, err := bench.RunAgreement(w, n)
		if err != nil {
			return err
		}
		return emit("# A9: partition agreement (adjusted Rand index)", rows, bench.FormatAgreement(rows))
	case "chunk-size":
		sizes := []int{2 * w.K, 5 * w.K, 10 * w.K, 25 * w.K, n / 2, n}
		rows, err := bench.RunChunkSizeSweep(w, n, sizes)
		if err != nil {
			return err
		}
		return emit("# A7: chunk-size sensitivity (fixed k, varying memory budget)", rows, bench.FormatChunkSizes(rows))
	case "distributed":
		rows, err := bench.RunDistributedScaleup(w, n, splits, []int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		return emit("# E7: simulated network-of-PCs scale-up (modeled gigabit LAN)", rows, bench.FormatDistributed(rows))
	case "memory":
		rows, err := bench.RunMemoryProfile(w, []int{5, 10})
		if err != nil {
			return err
		}
		return emit("# E6: peak operator state (the paper's memory-bottleneck claim)", rows, bench.FormatMemory(rows))
	case "accel":
		ab, err := bench.RunAccelerationAblation(w, n, splits)
		if err != nil {
			return err
		}
		return emit("", ab, bench.FormatAblation("A6: naive vs Hamerly-accelerated Lloyd", ab))
	case "ecvq":
		ab, err := bench.RunECVQAblation(w, n, splits, []float64{0.1, 1, 10})
		if err != nil {
			return err
		}
		return emit("", ab, bench.FormatAblation("A5: fixed-k vs ECVQ partial reduction", ab))
	case "baselines":
		rows, err := bench.RunBaselines(ctx, w, n, splits)
		if err != nil {
			return err
		}
		return emit("# A4: partial/merge vs prior systems", rows, bench.FormatBaselines(rows))
	case "all":
		fmt.Println("# Table 2: serial vs partial/merge k-means")
		fmt.Print(bench.FormatTable2(rows))
		fmt.Println()
		fmt.Print(bench.FormatFigure("Figure 6: overall execution time", bench.Figure6(rows)))
		fmt.Println()
		fmt.Print(bench.FormatFigure("Figure 7: minimum MSE", bench.Figure7(rows)))
		fmt.Println()
		fmt.Print(bench.FormatFigure("Figure 8: partial k-means time", bench.Figure8(rows)))
		fmt.Println()
		if rows, err := speedupRows(ctx, w, n, splits); err != nil {
			return err
		} else {
			fmt.Println("# E5: speed-up with cloned partial operators")
			fmt.Print(bench.FormatSpeedup(rows))
		}
		for _, a := range []struct {
			title string
			f     func() ([]bench.AblationRow, error)
		}{
			{"A1: collective vs incremental merge", func() ([]bench.AblationRow, error) { return bench.RunMergeModeAblation(w, n, splits) }},
			{"A2: merge seeding strategies", func() ([]bench.AblationRow, error) { return bench.RunMergeSeedingAblation(w, n, splits) }},
			{"A3: slicing strategies", func() ([]bench.AblationRow, error) { return bench.RunSlicingAblation(w, n, splits) }},
			{"A5: fixed-k vs ECVQ partial reduction", func() ([]bench.AblationRow, error) {
				return bench.RunECVQAblation(w, n, splits, []float64{0.1, 1, 10})
			}},
		} {
			fmt.Println()
			ab, err := a.f()
			if err != nil {
				return err
			}
			fmt.Print(bench.FormatAblation(a.title, ab))
		}
		fmt.Println()
		base, err := bench.RunBaselines(ctx, w, n, splits)
		if err != nil {
			return err
		}
		fmt.Println("# A4: partial/merge vs prior systems")
		fmt.Print(bench.FormatBaselines(base))
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

// paperishCases maps the paper's {serial, 5split, 10split} onto the
// workload: for the quick workload the split counts shrink with the
// smaller cells so chunks can still seed k centroids.
func paperishCases(w bench.Workload) []bench.Case {
	maxN := w.Sizes[len(w.Sizes)-1]
	if maxN >= 12500 {
		return bench.PaperCases()
	}
	return []bench.Case{
		{Name: "serial", Splits: 0},
		{Name: "2split", Splits: 2},
		{Name: "4split", Splits: 4},
	}
}

func speedupRows(ctx context.Context, w bench.Workload, n, splits int) ([]bench.SpeedupRow, error) {
	clones := []int{1, 2, 4, 8}
	if splits < 8 {
		clones = []int{1, 2, splits}
	}
	return bench.RunSpeedup(ctx, w, n, splits, clones)
}
