package main

import (
	"path/filepath"
	"testing"

	"streamkm/internal/grid"
)

func TestRunCellsMode(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, "cells", 2, 200, 4, 5, 7, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	index, err := grid.IndexDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(index) != 2 {
		t.Fatalf("wrote %d cells", len(index))
	}
	for _, e := range index {
		if e.Count != 200 || e.Dim != 4 {
			t.Fatalf("entry %+v", e)
		}
	}
}

func TestRunSwathMode(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, "swath", 0, 0, 6, 0, 7, 16, 5000, 30); err != nil {
		t.Fatal(err)
	}
	index, err := grid.IndexDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(index) == 0 {
		t.Fatal("swath mode wrote no cells")
	}
	for _, e := range index {
		if e.Count < 30 {
			t.Fatalf("cell below minpoints: %+v", e)
		}
	}
}

func TestRunRawSwathsMode(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, "rawswaths", 0, 0, 3, 0, 9, 2, 100, 0); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.skms"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("wrote %d swath files", len(files))
	}
	// Sort them into buckets to prove the pipeline connects.
	out := filepath.Join(dir, "buckets")
	stats, err := grid.SortSwathsToBuckets(files, out, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PointsScanned != 200 {
		t.Fatalf("scanned %d points", stats.PointsScanned)
	}
}

func TestRunUnknownMode(t *testing.T) {
	if err := run(t.TempDir(), "nope", 1, 1, 1, 1, 1, 1, 1, 1); err == nil {
		t.Fatal("unknown mode should error")
	}
}
