// Command datagen synthesizes MISR-like grid-bucket files for the other
// tools to cluster. Two modes:
//
//	-mode cells  (default) generates independent Gaussian-mixture cells
//	             with the paper's characteristics (6-D points, latent
//	             cluster structure), one bucket file per cell.
//	-mode swath  simulates a polar-orbiting instrument (Fig. 1 of the
//	             paper), buckets the swath measurements into 1°x1° grid
//	             cells, and writes every cell with at least -minpoints
//	             points.
//
// Example:
//
//	datagen -out data/ -cells 4 -points 20000 -seed 7
//	datagen -out data/ -mode swath -orbits 16 -minpoints 500
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"streamkm/internal/dataset"
	"streamkm/internal/grid"
)

func main() {
	var (
		out       = flag.String("out", "data", "output directory for .skmb bucket files")
		mode      = flag.String("mode", "cells", "generation mode: cells or swath")
		cells     = flag.Int("cells", 4, "cells mode: number of cells to generate")
		points    = flag.Int("points", 20000, "cells mode: points per cell (the paper's typical monthly cell)")
		dim       = flag.Int("dim", 6, "attribute dimensionality")
		clusters  = flag.Int("clusters", 40, "cells mode: latent clusters per cell")
		seed      = flag.Uint64("seed", 2004, "random seed")
		orbits    = flag.Int("orbits", 16, "swath mode: orbits to simulate")
		perOrbit  = flag.Int("per-orbit", 5000, "swath mode: measurements per orbit")
		minPoints = flag.Int("minpoints", 200, "swath mode: minimum points for a cell to be written")
	)
	flag.Parse()
	if err := run(*out, *mode, *cells, *points, *dim, *clusters, *seed, *orbits, *perOrbit, *minPoints); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(out, mode string, cells, points, dim, clusters int, seed uint64, orbits, perOrbit, minPoints int) error {
	switch mode {
	case "cells":
		return genCells(out, cells, points, dim, clusters, seed)
	case "swath":
		return genSwath(out, dim, seed, orbits, perOrbit, minPoints)
	case "rawswaths":
		return genRawSwaths(out, dim, seed, orbits, perOrbit)
	default:
		return fmt.Errorf("unknown mode %q (want cells, swath, or rawswaths)", mode)
	}
}

func genCells(out string, cells, points, dim, clusters int, seed uint64) error {
	spec := dataset.DefaultCellSpec()
	spec.Dim = dim
	spec.Clusters = clusters
	for i := 0; i < cells; i++ {
		set, err := dataset.GenerateCell(spec, points, seed+uint64(i))
		if err != nil {
			return err
		}
		key := grid.CellKey{Lat: i / 180, Lon: i%180 - 90}
		path := filepath.Join(out, grid.BucketFileName(key))
		if err := grid.WriteBucketFile(path, key, set); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d points, dim %d\n", path, set.Len(), set.Dim())
	}
	return nil
}

// genRawSwaths writes one .skms swath file per simulated orbit — the
// "complex, semi-structured files" input for cmd/swathsort.
func genRawSwaths(out string, dim int, seed uint64, orbits, perOrbit int) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	spec := grid.DefaultSwathSpec()
	spec.Dim = dim
	spec.Orbits = orbits
	spec.PointsPerOrbit = perOrbit
	model := grid.GeoGradientModel{Dim: dim, Noise: 0.8, Scale: 10}
	pts, err := grid.SimulateSwaths(spec, model, seed)
	if err != nil {
		return err
	}
	for orbit := 0; orbit < orbits; orbit++ {
		path := filepath.Join(out, fmt.Sprintf("orbit%03d.skms", orbit))
		chunk := pts[orbit*perOrbit : (orbit+1)*perOrbit]
		if err := grid.WriteSwathFile(path, dim, chunk); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d swath files (%d measurements each) to %s\n", orbits, perOrbit, out)
	return nil
}

func genSwath(out string, dim int, seed uint64, orbits, perOrbit, minPoints int) error {
	spec := grid.DefaultSwathSpec()
	spec.Dim = dim
	spec.Orbits = orbits
	spec.PointsPerOrbit = perOrbit
	model := grid.GeoGradientModel{Dim: dim, Noise: 0.8, Scale: 10}
	pts, err := grid.SimulateSwaths(spec, model, seed)
	if err != nil {
		return err
	}
	fmt.Printf("simulated %d measurements over %d orbits\n", len(pts), orbits)
	cellMap, err := grid.Bucketize(pts)
	if err != nil {
		return err
	}
	sets, err := grid.BucketizeToSets(cellMap)
	if err != nil {
		return err
	}
	written := 0
	for key, set := range sets {
		if set.Len() < minPoints {
			continue
		}
		path := filepath.Join(out, grid.BucketFileName(key))
		if err := grid.WriteBucketFile(path, key, set); err != nil {
			return err
		}
		written++
	}
	fmt.Printf("wrote %d cells (of %d touched) with >= %d points to %s\n",
		written, len(sets), minPoints, out)
	return nil
}
