// Command figrender runs the Table 2 sweep once and renders Figures 6-8
// (columns plus ASCII plots) from it — a single-sweep alternative to
// three separate benchtables invocations.
//
//	figrender          # laptop-scale workload
//	figrender -full    # the paper's exact sweep (minutes on one core)
package main

import (
	"flag"
	"fmt"
	"os"

	"streamkm/internal/bench"
)

func main() {
	full := flag.Bool("full", false, "use the paper's full workload")
	flag.Parse()
	w := bench.QuickWorkload()
	cases := []bench.Case{
		{Name: "serial", Splits: 0},
		{Name: "2split", Splits: 2},
		{Name: "4split", Splits: 4},
	}
	if *full {
		w = bench.PaperWorkload()
		cases = bench.PaperCases()
	}
	rows, err := bench.RunTable2(w, cases)
	if err != nil {
		fmt.Fprintln(os.Stderr, "figrender:", err)
		os.Exit(1)
	}
	for _, f := range []struct {
		title  string
		series []bench.FigureSeries
	}{
		{"Figure 6: overall execution time, serial vs partial/merge", bench.Figure6(rows)},
		{"Figure 7: minimum MSE, serial vs partial/merge", bench.Figure7(rows)},
		{"Figure 8: partial k-means time by split count", bench.Figure8(rows)},
	} {
		fmt.Printf("=== %s ===\n", f.title)
		fmt.Print(bench.FormatFigure(f.title, f.series))
		fmt.Print(bench.ASCIIPlot(f.title, f.series, 64, 16))
		fmt.Println()
	}
}
