// Command compress turns clustered grid buckets into multivariate
// histogram files (.skmh) — the paper's compression product (§1) — and
// answers range queries from the compressed form.
//
//	compress -data data -out hist -k 40                # compress all cells
//	compress -query hist/N34W118.skmh -dim0 0:10       # estimate mass in a range
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"streamkm/internal/core"
	"streamkm/internal/grid"
	"streamkm/internal/histogram"
	"streamkm/internal/vector"
)

func main() {
	var (
		data     = flag.String("data", "data", "directory of .skmb bucket files")
		out      = flag.String("out", "hist", "output directory for .skmh histogram files")
		k        = flag.Int("k", 40, "clusters (= histogram buckets) per cell")
		restarts = flag.Int("restarts", 10, "seed sets per partition")
		splits   = flag.Int("splits", 5, "partitions per cell")
		seed     = flag.Uint64("seed", 1, "random seed")
		query    = flag.String("query", "", "a .skmh file to range-query instead of compressing")
		ranges   = flag.String("range", "", "comma-separated per-dim ranges lo:hi (empty dim = unbounded), e.g. '0:10,,-5:5'")
	)
	flag.Parse()
	var err error
	if *query != "" {
		err = runQuery(*query, *ranges)
	} else {
		err = runCompress(*data, *out, *k, *restarts, *splits, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "compress:", err)
		os.Exit(1)
	}
}

func runCompress(data, out string, k, restarts, splits int, seed uint64) error {
	index, err := grid.IndexDir(data)
	if err != nil {
		return err
	}
	if len(index) == 0 {
		return fmt.Errorf("no bucket files in %s", data)
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	for _, entry := range index {
		key, set, err := grid.ReadBucketFile(entry.Path)
		if err != nil {
			return err
		}
		res, err := core.Cluster(set, core.Options{
			K: k, Restarts: restarts, Splits: splits, Seed: seed,
		})
		if err != nil {
			return fmt.Errorf("cell %v: %w", key, err)
		}
		h, err := histogram.Build(set, res.Centroids)
		if err != nil {
			return fmt.Errorf("cell %v: %w", key, err)
		}
		path := filepath.Join(out, key.String()+".skmh")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := h.Encode(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("%s: %d points -> %d buckets, %.1fx compression, point MSE %.2f\n",
			key, set.Len(), len(h.Buckets()), h.CompressionRatio(set.Len()), res.PointMSE)
	}
	return nil
}

func runQuery(path, ranges string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	h, err := histogram.Decode(f)
	if err != nil {
		return err
	}
	lo := vector.New(h.Dim())
	hi := vector.New(h.Dim())
	for d := 0; d < h.Dim(); d++ {
		lo[d], hi[d] = math.Inf(-1), math.Inf(1)
	}
	if ranges != "" {
		parts := strings.Split(ranges, ",")
		if len(parts) > h.Dim() {
			return fmt.Errorf("%d ranges for a %d-dimensional histogram", len(parts), h.Dim())
		}
		for d, spec := range parts {
			spec = strings.TrimSpace(spec)
			if spec == "" {
				continue
			}
			bounds := strings.SplitN(spec, ":", 2)
			if len(bounds) != 2 {
				return fmt.Errorf("bad range %q (want lo:hi)", spec)
			}
			if bounds[0] != "" {
				if lo[d], err = strconv.ParseFloat(bounds[0], 64); err != nil {
					return fmt.Errorf("bad range %q: %v", spec, err)
				}
			}
			if bounds[1] != "" {
				if hi[d], err = strconv.ParseFloat(bounds[1], 64); err != nil {
					return fmt.Errorf("bad range %q: %v", spec, err)
				}
			}
		}
	}
	est, err := h.EstimateRange(lo, hi)
	if err != nil {
		return err
	}
	fmt.Printf("histogram: dim %d, %d buckets, total mass %.0f\n", h.Dim(), len(h.Buckets()), h.Total())
	fmt.Printf("estimated mass in range: %.1f (%.1f%% of total)\n", est, 100*est/h.Total())
	mean := h.Mean()
	fmt.Printf("cell mean (from compressed form): %v\n", mean)
	return nil
}
