package main

import (
	"path/filepath"
	"testing"

	"streamkm/internal/dataset"
	"streamkm/internal/grid"
)

func TestCompressAndQuery(t *testing.T) {
	data := t.TempDir()
	spec := dataset.DefaultCellSpec()
	spec.Clusters = 4
	spec.Dim = 3
	set, err := dataset.GenerateCell(spec, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	key := grid.CellKey{Lat: 10, Lon: 10}
	if err := grid.WriteBucketFile(filepath.Join(data, grid.BucketFileName(key)), key, set); err != nil {
		t.Fatal(err)
	}
	out := t.TempDir()
	if err := runCompress(data, out, 4, 2, 2, 1); err != nil {
		t.Fatal(err)
	}
	histPath := filepath.Join(out, key.String()+".skmh")
	if err := runQuery(histPath, ""); err != nil {
		t.Fatal(err)
	}
	if err := runQuery(histPath, "0:5,,-1:1"); err != nil {
		t.Fatal(err)
	}
}

func TestCompressErrors(t *testing.T) {
	if err := runCompress(t.TempDir(), t.TempDir(), 4, 2, 2, 1); err == nil {
		t.Fatal("empty data dir should error")
	}
	if err := runQuery(filepath.Join(t.TempDir(), "missing.skmh"), ""); err == nil {
		t.Fatal("missing histogram should error")
	}
}

func TestQueryBadRanges(t *testing.T) {
	data := t.TempDir()
	spec := dataset.DefaultCellSpec()
	spec.Clusters = 2
	spec.Dim = 2
	set, err := dataset.GenerateCell(spec, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	key := grid.CellKey{Lat: 0, Lon: 0}
	if err := grid.WriteBucketFile(filepath.Join(data, grid.BucketFileName(key)), key, set); err != nil {
		t.Fatal(err)
	}
	out := t.TempDir()
	if err := runCompress(data, out, 2, 1, 2, 1); err != nil {
		t.Fatal(err)
	}
	histPath := filepath.Join(out, key.String()+".skmh")
	for _, bad := range []string{"1:2:3", "x:2", "1:y", "1:2,3:4,5:6"} {
		if err := runQuery(histPath, bad); err == nil {
			t.Fatalf("range %q should error", bad)
		}
	}
}
