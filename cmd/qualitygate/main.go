// Command qualitygate checks every summarizer operator against the
// committed paper-reproduction table (results_table2_full.txt): each
// operator clusters the exact cells behind the table's chosen row and
// its measured point MSE must stay within a stated tolerance of the
// row's reference value. The report is JSON on stdout (or -out), one
// entry per operator, so CI can upload it as an artifact; a violation
// sets a non-zero exit code, which CI treats as non-blocking.
//
// The reference row is the partitioned k-means result, so the gate
// reads as "no pluggable operator may degrade clustering quality more
// than -tol times the shipped baseline". Alternative operators get a
// summary budget of 2k points per chunk (coreset m, ECVQ max k) —
// comparable state to the k-means operator's k weighted centroids.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"streamkm/internal/bench"
	"streamkm/internal/core"
	"streamkm/internal/kmeans"
)

type operatorReport struct {
	Operator string  `json:"operator"`
	PointMSE float64 `json:"point_mse"`
	Ratio    float64 `json:"ratio"`
	OK       bool    `json:"ok"`
}

// snapshotReport gates the windowed query path: the warm (mini-batch,
// incrementally maintained) snapshot answer must stay within its own
// tight tolerance of the cold full-merge reference over the same
// stream.
type snapshotReport struct {
	ColdMSE   float64 `json:"cold_mse"`
	WarmMSE   float64 `json:"warm_mse"`
	Ratio     float64 `json:"ratio"`
	Tolerance float64 `json:"tolerance"`
	OK        bool    `json:"ok"`
}

type report struct {
	Table        string           `json:"table"`
	N            int              `json:"n"`
	Splits       int              `json:"splits"`
	Versions     int              `json:"versions"`
	ReferenceMSE float64          `json:"reference_point_mse"`
	Tolerance    float64          `json:"tolerance"`
	Operators    []operatorReport `json:"operators"`
	Snapshot     *snapshotReport  `json:"snapshot,omitempty"`
	Pass         bool             `json:"pass"`
}

func main() {
	var (
		table    = flag.String("table", "results_table2_full.txt", "committed Table 2 reproduction to gate against")
		n        = flag.Int("n", 12500, "cell size; must have a row in the table")
		splits   = flag.Int("splits", 5, "split count; the table row is '<splits>split'")
		versions = flag.Int("versions", 2, "dataset versions to average (the table used 5)")
		tol      = flag.Float64("tol", 1.25, "max allowed measured/reference point-MSE ratio")
		snapTol  = flag.Float64("snapshot-tol", 1.05, "max allowed warm/cold windowed-snapshot MSE ratio")
		out      = flag.String("out", "", "write the JSON report here instead of stdout")
	)
	flag.Parse()

	ref, err := referencePointMSE(*table, *n, *splits)
	if err != nil {
		fatal(err)
	}

	w := bench.PaperWorkload()
	w.Versions = *versions
	rep := report{
		Table: *table, N: *n, Splits: *splits, Versions: *versions,
		ReferenceMSE: ref, Tolerance: *tol, Pass: true,
	}
	for _, name := range core.SummarizerNames() {
		mse, err := measure(w, *n, *splits, name, "")
		if err != nil {
			fatal(fmt.Errorf("operator %s: %w", name, err))
		}
		op := operatorReport{
			Operator: name,
			PointMSE: mse,
			Ratio:    mse / ref,
			OK:       mse <= ref**tol,
		}
		if !op.OK {
			rep.Pass = false
		}
		rep.Operators = append(rep.Operators, op)
	}
	// The mini-batch merge solver rides the same gate: swapping the
	// merge kernel must not degrade end quality past the tolerance.
	{
		mse, err := measure(w, *n, *splits, core.SummarizerKMeans, kmeans.SolverMiniBatch)
		if err != nil {
			fatal(fmt.Errorf("merge solver %s: %w", kmeans.SolverMiniBatch, err))
		}
		op := operatorReport{
			Operator: core.SummarizerKMeans + "+merge-" + kmeans.SolverMiniBatch,
			PointMSE: mse,
			Ratio:    mse / ref,
			OK:       mse <= ref**tol,
		}
		if !op.OK {
			rep.Pass = false
		}
		rep.Operators = append(rep.Operators, op)
	}
	snap, err := snapshotGate(w, *n, *snapTol)
	if err != nil {
		fatal(fmt.Errorf("snapshot gate: %w", err))
	}
	rep.Snapshot = snap
	if !snap.OK {
		rep.Pass = false
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fatal(err)
		}
	}
	os.Stdout.Write(enc)
	if !rep.Pass {
		os.Exit(1)
	}
}

// measure averages an operator's point MSE over the workload's dataset
// versions, using the same cell and seed derivation as bench.RunTable2
// so the kmeans operator reproduces the table row it is gated against.
func measure(w bench.Workload, n, splits int, operator, solver string) (float64, error) {
	var sum float64
	for v := 0; v < w.Versions; v++ {
		cell, err := w.Cell(n, v)
		if err != nil {
			return 0, err
		}
		res, err := core.Cluster(cell, core.Options{
			K: w.K, Restarts: w.Restarts, Splits: splits,
			Seed:        w.Seed + uint64(v)*101 + uint64(n),
			Summarizer:  operator,
			MergeSolver: solver,
			CoresetSize: 2 * w.K,
			ECVQMaxK:    2 * w.K,
		})
		if err != nil {
			return 0, err
		}
		sum += res.PointMSE
	}
	return sum / float64(w.Versions), nil
}

// snapshotGate streams one workload cell through two windowed
// clusterers — a cold reference that fully re-merges per query and a
// warm one whose mini-batch index maintains the answer incrementally —
// and compares their final snapshot MSE. Both see identical pushes and
// seeds, so the ratio isolates exactly the warm-start approximation.
func snapshotGate(w bench.Workload, n int, tol float64) (*snapshotReport, error) {
	cell, err := w.Cell(n, 0)
	if err != nil {
		return nil, err
	}
	run := func(solver string) (float64, error) {
		wc, err := core.NewWindowedClusterer(cell.Dim(), core.WindowConfig{
			K:           w.K,
			ChunkPoints: n / 20,
			// A window smaller than the chunk count forces expirations,
			// so the gate covers rotation, expiry, and the buffered tail.
			WindowChunks: 10,
			Restarts:     2,
			Seed:         w.Seed,
			MergeSolver:  solver,
		})
		if err != nil {
			return 0, err
		}
		for i := 0; i < cell.Len(); i++ {
			if err := wc.Push(cell.At(i)); err != nil {
				return 0, err
			}
		}
		mr, err := wc.Snapshot()
		if err != nil {
			return 0, err
		}
		return mr.MSE, nil
	}
	cold, err := run("")
	if err != nil {
		return nil, err
	}
	warm, err := run(kmeans.SolverMiniBatch)
	if err != nil {
		return nil, err
	}
	return &snapshotReport{
		ColdMSE:   cold,
		WarmMSE:   warm,
		Ratio:     warm / cold,
		Tolerance: tol,
		OK:        warm <= cold*tol,
	}, nil
}

// referencePointMSE finds the point-MSE column of the table row for the
// requested cell size and split count. Rows look like:
//
//	12500    5split              537            0           40.8           86.3            451
//
// with point MSE in the sixth column (serial rows share the layout).
func referencePointMSE(path string, n, splits int) (float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	wantCase := fmt.Sprintf("%dsplit", splits)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 7 || fields[1] != wantCase {
			continue
		}
		if rowN, err := strconv.Atoi(fields[0]); err != nil || rowN != n {
			continue
		}
		mse, err := strconv.ParseFloat(fields[5], 64)
		if err != nil {
			return 0, fmt.Errorf("qualitygate: bad point MSE in row %q: %w", sc.Text(), err)
		}
		return mse, nil
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	return 0, fmt.Errorf("qualitygate: no row for N=%d case %s in %s", n, wantCase, path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qualitygate:", err)
	os.Exit(2)
}
