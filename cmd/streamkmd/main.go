// Command streamkmd serves streaming k-means as a daemon: many
// concurrent clustering sessions behind an HTTP API, each journaled
// to a write-ahead log and compacted into SKMC checkpoints so a crash
// (SIGKILL included) resumes every session bit-identically from its
// last durable point. SIGTERM drains gracefully: admissions stop,
// queued ingest applies, every session flushes a final checkpoint,
// and the process exits 0.
//
// Usage:
//
//	streamkmd -listen :8080 -state ./streamkmd-state \
//	    -mem-budget 268435456 -fsync-every 64 -checkpoint-every 4096
//
// See internal/serve for the API and docs/ARCHITECTURE.md for the
// durability contract.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"streamkm/internal/buildinfo"
	"streamkm/internal/govern"
	"streamkm/internal/serve"
)

func main() {
	var (
		listen          = flag.String("listen", "127.0.0.1:8080", "TCP address to serve the HTTP API on")
		state           = flag.String("state", "streamkmd-state", "state directory (sessions, checkpoints, WALs)")
		maxSessions     = flag.Int("max-sessions", 64, "maximum concurrently hosted sessions")
		memBudget       = flag.Int64("mem-budget", 0, "memory budget in bytes across all sessions (0 = unlimited); admissions beyond it get 503")
		queueDepth      = flag.Int("queue-depth", 16, "per-session ingest queue capacity in batches")
		maxBatch        = flag.Int("max-batch-points", 4096, "maximum points per ingest request")
		fsyncEvery      = flag.Int("fsync-every", 64, "default points between WAL fsyncs (1 = every point durable before its response)")
		checkpointEvery = flag.Int("checkpoint-every", 4096, "default points between checkpoint compactions")
		progressTimeout = flag.Duration("progress-timeout", 0, "quarantine a session whose worker holds work without progress for this long (0 = off)")
		sessionDeadline = flag.Duration("session-deadline", 0, "default session lifetime (0 = unlimited)")
		drainTimeout    = flag.Duration("drain-timeout", 30*time.Second, "maximum time to flush sessions on SIGTERM")
		retryAfter      = flag.Duration("retry-after", time.Second, "Retry-After hint on 503 refusals")
		version         = flag.Bool("version", false, "print the build identity and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("streamkmd"))
		return
	}
	logger := log.New(os.Stderr, "streamkmd: ", log.LstdFlags)

	srv, err := serve.New(serve.Config{
		Root:        *state,
		MaxSessions: *maxSessions,
		Budget: govern.Budget{
			MemoryBytes:     *memBudget,
			ProgressTimeout: *progressTimeout,
			Deadline:        *sessionDeadline,
		},
		QueueDepth:      *queueDepth,
		MaxBatchPoints:  *maxBatch,
		FsyncEvery:      *fsyncEvery,
		CheckpointEvery: *checkpointEvery,
		RetryAfter:      *retryAfter,
		Logf:            logger.Printf,
	})
	if err != nil {
		logger.Fatalf("startup: %v", err)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	// The chaos harness parses this line to find the bound port.
	fmt.Printf("streamkmd listening on %s (state %s, %s)\n", ln.Addr(), *state, buildinfo.String("streamkmd"))

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		logger.Printf("received %v, draining", sig)
	case err := <-errc:
		logger.Fatalf("serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain first (stops admissions, flushes every session), then shut
	// the HTTP server down so in-flight queries finish answering.
	if err := srv.Drain(ctx); err != nil {
		hs.Shutdown(ctx)
		logger.Fatalf("drain: %v", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		logger.Fatalf("shutdown: %v", err)
	}
	logger.Printf("drained cleanly, exiting")
}
