// Command loadgen is the production-scale load harness CLI: it replays
// deterministic corpora against the in-process engine and/or a spawned
// streamkmd daemon through four capacity scenarios — throughput
// ceiling, latency under load, governor degradation, and crash
// recovery — and writes a versioned streamkm.load-report/v1 JSON
// document whose gates scripts/load_gate.sh compares against the
// committed baseline.
//
// Usage:
//
//	go run ./cmd/loadgen -profile smoke -out load-smoke.json
//	go run ./cmd/loadgen -profile ci -driver daemon -out load-ci.json
//	go run ./cmd/loadgen -scenarios throughput,latency -driver engine
//
// Profiles fix every knob so runs are comparable: the committed
// LOAD_PR10.json baseline and the CI load job both use -profile ci.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"streamkm/internal/loadgen"
)

// profile bundles every scenario knob. Two runs with the same profile
// measure the same workload, which is what makes gate comparisons
// against a committed baseline meaningful.
type profile struct {
	name    string
	corpus  loadgen.CorpusSpec
	session loadgen.SessionSpec

	sessions int // throughput/latency/recovery session count
	batch    int // points per ingest batch

	tpStartRate float64
	tpMaxRate   float64
	tpStep      time.Duration

	latRate       float64
	latDuration   time.Duration
	latQueryEvery int

	degSessions int // offered; the budget admits degAdmit of them
	degAdmit    int
	degRate     float64
	degDuration time.Duration

	recPrefill int // points per session before the crash
}

func profiles() map[string]profile {
	base := loadgen.CorpusSpec{Shape: loadgen.ShapeMixture, Dim: 6, Clusters: 8, Seed: 1}
	return map[string]profile{
		// smoke: seconds end-to-end; wired into scripts/check.sh. Not
		// gated — it proves the harness runs, not what the host can do.
		"smoke": {
			name:    "smoke",
			corpus:  base,
			session: loadgen.SessionSpec{Dim: 6, K: 4, ChunkPoints: 64, WindowChunks: 3, Seed: 1},

			sessions: 2,
			batch:    32,

			tpStartRate: 2000,
			tpMaxRate:   32000,
			tpStep:      300 * time.Millisecond,

			latRate:       2000,
			latDuration:   600 * time.Millisecond,
			latQueryEvery: 4,

			degSessions: 4,
			degAdmit:    2,
			degRate:     2000,
			degDuration: 400 * time.Millisecond,

			recPrefill: 128,
		},
		// ci: the gated profile. Minutes end-to-end; enough sessions and
		// rate to reach the daemon's real saturation behavior.
		"ci": {
			name:    "ci",
			corpus:  base,
			session: loadgen.SessionSpec{Dim: 6, K: 8, ChunkPoints: 256, WindowChunks: 4, Seed: 1},

			sessions: 64,
			batch:    64,

			tpStartRate: 8000,
			tpMaxRate:   17e6, // 8000 * 2^11; the engine saturates well below this
			tpStep:      1500 * time.Millisecond,

			latRate:       16000,
			latDuration:   5 * time.Second,
			latQueryEvery: 8,

			degSessions: 128,
			degAdmit:    64,
			degRate:     16000,
			degDuration: 3 * time.Second,

			recPrefill: 512,
		},
	}
}

func main() {
	var (
		profileName = flag.String("profile", "ci", "workload profile: smoke or ci")
		driverSel   = flag.String("driver", "both", "system under test: engine, daemon, or both")
		scenarioSel = flag.String("scenarios", "all", "comma-separated subset of throughput,latency,degradation,recovery (or all)")
		outPath     = flag.String("out", "", "write the load report JSON here (default: print to stdout)")
		shape       = flag.String("shape", "", "override the corpus shape: mixture, drift, burst, adversarial")
		seed        = flag.Uint64("seed", 0, "override the corpus/session seed (0 = profile default)")
		sessions    = flag.Int("sessions", 0, "override the session count (0 = profile default)")
		daemonBin   = flag.String("daemon-bin", "", "streamkmd binary to drive (default: go build ./cmd/streamkmd into a temp dir)")
		verbose     = flag.Bool("v", false, "log each throughput step and daemon spawn")
	)
	flag.Parse()

	prof, ok := profiles()[*profileName]
	if !ok {
		fatalf("unknown profile %q (want smoke or ci)", *profileName)
	}
	if *shape != "" {
		prof.corpus.Shape = *shape
	}
	if *seed != 0 {
		prof.corpus.Seed = *seed
		prof.session.Seed = *seed
	}
	if *sessions > 0 {
		prof.sessions = *sessions
	}
	scenarios, err := parseScenarios(*scenarioSel)
	if err != nil {
		fatalf("%v", err)
	}
	drivers, err := parseDrivers(*driverSel)
	if err != nil {
		fatalf("%v", err)
	}

	corpus, err := loadgen.NewCorpus(prof.corpus)
	if err != nil {
		fatalf("%v", err)
	}

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	}

	run := runner{
		prof:      prof,
		corpus:    corpus,
		scenarios: scenarios,
		daemonBin: *daemonBin,
		logf:      logf,
	}

	report := &loadgen.Report{
		Schema:  loadgen.ReportSchema,
		Profile: prof.name,
		Corpus:  corpus.Spec(),
		Session: prof.session,
	}
	for _, name := range drivers {
		start := time.Now()
		dr, err := run.driver(name)
		if err != nil {
			fatalf("driver %s: %v", name, err)
		}
		report.Drivers = append(report.Drivers, dr)
		fmt.Fprintf(os.Stderr, "loadgen: driver %s done in %.1fs\n", name, time.Since(start).Seconds())
	}
	report.BuildGates()
	if err := report.Validate(); err != nil {
		fatalf("%v", err)
	}

	printSummary(report)
	blob, err := report.JSON()
	if err != nil {
		fatalf("%v", err)
	}
	if *outPath == "" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*outPath, blob, 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "loadgen: report written to %s\n", *outPath)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "loadgen: "+format+"\n", args...)
	os.Exit(1)
}

func parseScenarios(sel string) (map[string]bool, error) {
	all := map[string]bool{
		loadgen.ScenarioThroughput:  true,
		loadgen.ScenarioLatency:     true,
		loadgen.ScenarioDegradation: true,
		loadgen.ScenarioRecovery:    true,
	}
	if sel == "all" || sel == "" {
		return all, nil
	}
	out := map[string]bool{}
	for _, s := range strings.Split(sel, ",") {
		s = strings.TrimSpace(s)
		if !all[s] {
			return nil, fmt.Errorf("unknown scenario %q", s)
		}
		out[s] = true
	}
	return out, nil
}

func parseDrivers(sel string) ([]string, error) {
	switch sel {
	case "engine":
		return []string{"engine"}, nil
	case "daemon":
		return []string{"daemon"}, nil
	case "both", "":
		return []string{"engine", "daemon"}, nil
	default:
		return nil, fmt.Errorf("unknown driver %q (want engine, daemon, or both)", sel)
	}
}

// runner executes the selected scenarios against one driver kind. Each
// scenario gets a fresh system under test: a new EngineDriver, or a
// daemon spawned onto a fresh state directory, so scenarios cannot
// contaminate each other.
type runner struct {
	prof      profile
	corpus    *loadgen.Corpus
	scenarios map[string]bool
	daemonBin string
	logf      func(format string, args ...any)

	tmpRoot string // lazily created scratch space for daemon state dirs
}

func (r *runner) driver(name string) (loadgen.DriverReport, error) {
	switch name {
	case "engine":
		return r.engine()
	case "daemon":
		return r.daemon()
	default:
		return loadgen.DriverReport{}, fmt.Errorf("unknown driver %q", name)
	}
}

// degBudget sizes the induced governor budget so that of degSessions
// offered, only degAdmit fit — the degradation scenario's premise.
func (r *runner) degBudget() int64 {
	return loadgen.SessionCost(r.prof.session) * int64(r.prof.degAdmit)
}

func (r *runner) engine() (loadgen.DriverReport, error) {
	p := r.prof
	rep := loadgen.DriverReport{Driver: "engine"}
	if r.scenarios[loadgen.ScenarioThroughput] {
		d := loadgen.NewEngineDriver(nil)
		res, err := loadgen.RunThroughput(d, r.corpus, loadgen.ThroughputOptions{
			Sessions: p.sessions, BatchPoints: p.batch,
			StartRate: p.tpStartRate, MaxRate: p.tpMaxRate, StepDuration: p.tpStep,
			Spec: p.session, Logf: r.logf,
		})
		d.Close()
		if err != nil {
			return rep, err
		}
		rep.Throughput = res
	}
	if r.scenarios[loadgen.ScenarioLatency] {
		d := loadgen.NewEngineDriver(nil)
		res, err := loadgen.RunLatency(d, r.corpus, loadgen.LatencyOptions{
			Sessions: p.sessions, BatchPoints: p.batch,
			RatePPS: p.latRate, Duration: p.latDuration, QueryEveryBatches: p.latQueryEvery,
			Spec: p.session,
		})
		d.Close()
		if err != nil {
			return rep, err
		}
		rep.Latency = res
	}
	if r.scenarios[loadgen.ScenarioDegradation] {
		d := loadgen.NewEngineDriver(nil)
		d.MemoryBudget = r.degBudget()
		res, err := loadgen.RunDegradation(d, r.corpus, loadgen.DegradationOptions{
			Sessions: p.degSessions, BatchPoints: p.batch,
			RatePPS: p.degRate, Duration: p.degDuration,
			Spec: p.session,
		})
		d.Close()
		if err != nil {
			return rep, err
		}
		rep.Degradation = res
	}
	if r.scenarios[loadgen.ScenarioRecovery] {
		d := loadgen.NewEngineDriver(nil)
		res, err := loadgen.RunRecovery(d, r.corpus, loadgen.RecoveryOptions{
			Sessions: p.sessions, BatchPoints: p.batch,
			PrefillPoints: p.recPrefill,
			Spec:          p.session,
		})
		d.Close()
		if err != nil {
			return rep, err
		}
		rep.Recovery = res
	}
	return rep, nil
}

// ensureDaemonBin builds streamkmd once per process unless -daemon-bin
// supplied one.
func (r *runner) ensureDaemonBin() (string, error) {
	if r.daemonBin != "" {
		return r.daemonBin, nil
	}
	root, err := r.scratch()
	if err != nil {
		return "", err
	}
	bin, err := loadgen.BuildDaemon(root)
	if err != nil {
		return "", err
	}
	r.daemonBin = bin
	return bin, nil
}

func (r *runner) scratch() (string, error) {
	if r.tmpRoot != "" {
		return r.tmpRoot, nil
	}
	root, err := os.MkdirTemp("", "loadgen-*")
	if err != nil {
		return "", err
	}
	r.tmpRoot = root
	return root, nil
}

// spawnDaemon starts a fresh daemon on its own state directory; the
// caller must Close it.
func (r *runner) spawnDaemon(label string, memBudget int64) (*loadgen.DaemonDriver, error) {
	bin, err := r.ensureDaemonBin()
	if err != nil {
		return nil, err
	}
	root, err := r.scratch()
	if err != nil {
		return nil, err
	}
	state, err := os.MkdirTemp(root, "state-"+label+"-*")
	if err != nil {
		return nil, err
	}
	return loadgen.NewDaemonDriver(loadgen.DaemonConfig{
		Bin:      bin,
		StateDir: state,
		// Session admission is governed by memory in the degradation
		// scenario; elsewhere leave generous headroom so the session
		// limit is never the variable under test.
		MaxSessions: r.prof.degSessions + r.prof.sessions,
		MemBudget:   memBudget,
		Logf:        r.logf,
	})
}

func (r *runner) daemon() (loadgen.DriverReport, error) {
	p := r.prof
	rep := loadgen.DriverReport{Driver: "daemon"}
	if r.scenarios[loadgen.ScenarioThroughput] {
		d, err := r.spawnDaemon(loadgen.ScenarioThroughput, 0)
		if err != nil {
			return rep, err
		}
		res, err := loadgen.RunThroughput(d, r.corpus, loadgen.ThroughputOptions{
			Sessions: p.sessions, BatchPoints: p.batch,
			StartRate: p.tpStartRate, MaxRate: p.tpMaxRate, StepDuration: p.tpStep,
			Spec: p.session, Logf: r.logf,
		})
		d.Close()
		if err != nil {
			return rep, err
		}
		rep.Throughput = res
	}
	if r.scenarios[loadgen.ScenarioLatency] {
		d, err := r.spawnDaemon(loadgen.ScenarioLatency, 0)
		if err != nil {
			return rep, err
		}
		res, err := loadgen.RunLatency(d, r.corpus, loadgen.LatencyOptions{
			Sessions: p.sessions, BatchPoints: p.batch,
			RatePPS: p.latRate, Duration: p.latDuration, QueryEveryBatches: p.latQueryEvery,
			Spec: p.session,
		})
		d.Close()
		if err != nil {
			return rep, err
		}
		rep.Latency = res
	}
	if r.scenarios[loadgen.ScenarioDegradation] {
		d, err := r.spawnDaemon(loadgen.ScenarioDegradation, r.degBudget())
		if err != nil {
			return rep, err
		}
		res, err := loadgen.RunDegradation(d, r.corpus, loadgen.DegradationOptions{
			Sessions: p.degSessions, BatchPoints: p.batch,
			RatePPS: p.degRate, Duration: p.degDuration,
			Spec: p.session,
		})
		d.Close()
		if err != nil {
			return rep, err
		}
		rep.Degradation = res
	}
	if r.scenarios[loadgen.ScenarioRecovery] {
		d, err := r.spawnDaemon(loadgen.ScenarioRecovery, 0)
		if err != nil {
			return rep, err
		}
		res, err := loadgen.RunRecovery(d, r.corpus, loadgen.RecoveryOptions{
			Sessions: p.sessions, BatchPoints: p.batch,
			PrefillPoints: p.recPrefill,
			Spec:          p.session,
		})
		d.Close()
		if err != nil {
			return rep, err
		}
		rep.Recovery = res
	}
	return rep, nil
}

// printSummary writes the human-readable capacity table to stderr so
// stdout stays clean for the JSON report.
func printSummary(r *loadgen.Report) {
	fmt.Fprintf(os.Stderr, "\nload report (%s, profile %s, shape %s)\n",
		r.Schema, r.Profile, r.Corpus.Shape)
	for _, d := range r.Drivers {
		fmt.Fprintf(os.Stderr, "  driver %s\n", d.Driver)
		if t := d.Throughput; t != nil {
			fmt.Fprintf(os.Stderr, "    throughput: ceiling %.0f pts/s over %d sessions (saturated=%t, %d steps)\n",
				t.CeilingPPS, t.Sessions, t.Saturated, len(t.Steps))
		}
		if l := d.Latency; l != nil {
			fmt.Fprintf(os.Stderr, "    latency:    ingest p50=%.2fms p99=%.2fms; query p50=%.2fms p99=%.2fms (%d queries)\n",
				l.Ingest.P50Ms, l.Ingest.P99Ms, l.Query.P50Ms, l.Query.P99Ms, l.Queries)
		}
		if g := d.Degradation; g != nil {
			fmt.Fprintf(os.Stderr, "    degraded:   %d/%d sessions admitted, %.0f pts/s sustained, %.1f%% ingest rejected\n",
				g.AdmittedSessions, g.OfferedSessions, g.AchievedPPS, 100*g.RejectFrac)
		}
		if rec := d.Recovery; rec != nil {
			fmt.Fprintf(os.Stderr, "    recovery:   ready in %.2fs, all %d sessions answering in %.2fs\n",
				rec.ReadySeconds, rec.Sessions, rec.QuerySeconds)
		}
	}
	fmt.Fprintln(os.Stderr)
}
