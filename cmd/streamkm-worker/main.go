// Command streamkm-worker is the remote end of pmkm's distributed
// execution (the paper's §3.4 option-1 scale-up): it listens for a
// coordinator, runs the summarizer operator each leased chunk names
// (partial k-means, ecvq, or coreset — the chunk's SKMF payload
// carries the operator spec), and returns the weighted summary. It is
// stateless — all planning, journaling, and merging stay on the
// coordinator — so any number of workers can be pointed at by pmkm
// -remote, and a worker that dies simply has its chunks re-leased to
// the survivors. -summarizers restricts which operators this worker
// agrees to run; chunks naming any other operator are refused with a
// typed protocol error instead of computed.
//
// Two-terminal quickstart:
//
//	streamkm-worker -listen :7601          # terminal 1 (repeat per worker)
//	pmkm -data data/ -remote :7601,:7602   # terminal 2
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"streamkm/internal/buildinfo"
	"streamkm/internal/dist"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		listen      = flag.String("listen", ":7601", "address to serve coordinators on (host:port)")
		quiet       = flag.Bool("quiet", false, "suppress per-connection log lines")
		summarizers = flag.String("summarizers", "", "comma-separated allowlist of summarizer operators to run (e.g. kmeans,coreset); empty allows all")
		version     = flag.Bool("version", false, "print the build identity and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("streamkm-worker"))
		return 0
	}

	var allow []string
	for _, s := range strings.Split(*summarizers, ",") {
		if s = strings.TrimSpace(s); s != "" {
			allow = append(allow, s)
		}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "streamkm-worker:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "streamkm-worker: serving on %s\n", ln.Addr())

	// SIGINT/SIGTERM drain the worker: the listener closes, live
	// conversations are torn down, and Serve returns once every
	// connection handler has exited.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := dist.WorkerConfig{Summarizers: allow}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if err := dist.Serve(ctx, ln, cfg); err != nil && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "streamkm-worker:", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "streamkm-worker: shut down")
	return 0
}
