package main

import (
	"math"
	"path/filepath"
	"testing"

	"streamkm/internal/grid"
	"streamkm/internal/rng"
	"streamkm/internal/vector"
)

func TestRunSortsSwaths(t *testing.T) {
	dir := t.TempDir()
	r := rng.New(3)
	pts := make([]grid.GeoPoint, 200)
	for i := range pts {
		pts[i] = grid.GeoPoint{
			Lat:   r.Float64()*160 - 80,
			Lon:   r.Float64()*340 - 170,
			Attrs: vector.Of(r.NormFloat64(), r.NormFloat64()),
		}
	}
	if err := grid.WriteSwathFile(filepath.Join(dir, "a.skms"), 2, pts[:100]); err != nil {
		t.Fatal(err)
	}
	if err := grid.WriteSwathFile(filepath.Join(dir, "b.skms"), 2, pts[100:]); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "buckets")
	if err := run(filepath.Join(dir, "*.skms"), out, 50, false); err != nil {
		t.Fatal(err)
	}
	index, err := grid.IndexDir(out)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, e := range index {
		total += e.Count
	}
	if total != 200 {
		t.Fatalf("buckets hold %d points", total)
	}
}

func TestRunNoMatches(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "*.skms"), t.TempDir(), 0, false); err == nil {
		t.Fatal("no matches should error")
	}
}

func TestRunSkipsPoisonRecords(t *testing.T) {
	dir := t.TempDir()
	r := rng.New(4)
	pts := make([]grid.GeoPoint, 50)
	for i := range pts {
		pts[i] = grid.GeoPoint{
			Lat:   r.Float64()*160 - 80,
			Lon:   r.Float64()*340 - 170,
			Attrs: vector.Of(r.NormFloat64(), r.NormFloat64()),
		}
	}
	pts[7].Lat = math.NaN() // poison record
	if err := grid.WriteSwathFile(filepath.Join(dir, "a.skms"), 2, pts); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "buckets")
	// Strict mode aborts; the default skips and counts.
	if err := run(filepath.Join(dir, "*.skms"), filepath.Join(dir, "strict"), 0, true); err == nil {
		t.Fatal("strict run should abort on the poison record")
	}
	if err := run(filepath.Join(dir, "*.skms"), out, 0, false); err != nil {
		t.Fatal(err)
	}
	index, err := grid.IndexDir(out)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, e := range index {
		total += e.Count
	}
	if total != 49 {
		t.Fatalf("buckets hold %d points, want 49", total)
	}
}
