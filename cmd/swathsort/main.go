// Command swathsort performs the offline step the paper assumes before
// clustering (§3.1): scan raw swath files once each and sort their
// measurements into per-cell grid buckets under a bounded memory budget
// (spilling to segment files under pressure).
//
//	swathsort -swaths 'orbits/*.skms' -out data -budget 100000
//
// Raw swath files come from `datagen -mode rawswaths`. By default the
// sort is lenient: records it cannot use — non-finite or out-of-range
// coordinates, or the unreadable tail of a truncated file — are skipped
// and counted on stderr rather than aborting the whole run. Pass
// -strict to fail on the first bad record instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"streamkm/internal/grid"
)

func main() {
	var (
		pattern = flag.String("swaths", "orbits/*.skms", "glob of swath files to sort")
		out     = flag.String("out", "data", "output directory for .skmb buckets")
		budget  = flag.Int("budget", 100000, "max points buffered in memory (0 = unbounded)")
		strict  = flag.Bool("strict", false, "abort on the first unusable swath record instead of skipping it")
	)
	flag.Parse()
	if err := run(*pattern, *out, *budget, *strict); err != nil {
		fmt.Fprintln(os.Stderr, "swathsort:", err)
		os.Exit(1)
	}
}

func run(pattern, out string, budget int, strict bool) error {
	paths, err := filepath.Glob(pattern)
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no files match %q", pattern)
	}
	stats, err := grid.SortSwathsToBucketsOpt(paths, out, budget, grid.SortOptions{
		Lenient: !strict,
		OnSkip: func(path string, records int, err error) {
			fmt.Fprintf(os.Stderr, "swathsort: %s: skipped %d record(s): %v\n", path, records, err)
		},
	})
	if err != nil {
		return err
	}
	if stats.RecordsSkipped > 0 {
		fmt.Fprintf(os.Stderr, "swathsort: skipped %d unusable record(s) in total\n", stats.RecordsSkipped)
	}
	fmt.Printf("scanned %d points from %d swath files -> %d cell buckets (%d memory spills) in %s\n",
		stats.PointsScanned, len(paths), stats.CellsWritten, stats.Spills, out)
	return nil
}
