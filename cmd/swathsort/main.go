// Command swathsort performs the offline step the paper assumes before
// clustering (§3.1): scan raw swath files once each and sort their
// measurements into per-cell grid buckets under a bounded memory budget
// (spilling to segment files under pressure).
//
//	swathsort -swaths 'orbits/*.skms' -out data -budget 100000
//
// Raw swath files come from `datagen -mode rawswaths`.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"streamkm/internal/grid"
)

func main() {
	var (
		pattern = flag.String("swaths", "orbits/*.skms", "glob of swath files to sort")
		out     = flag.String("out", "data", "output directory for .skmb buckets")
		budget  = flag.Int("budget", 100000, "max points buffered in memory (0 = unbounded)")
	)
	flag.Parse()
	if err := run(*pattern, *out, *budget); err != nil {
		fmt.Fprintln(os.Stderr, "swathsort:", err)
		os.Exit(1)
	}
}

func run(pattern, out string, budget int) error {
	paths, err := filepath.Glob(pattern)
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no files match %q", pattern)
	}
	stats, err := grid.SortSwathsToBuckets(paths, out, budget)
	if err != nil {
		return err
	}
	fmt.Printf("scanned %d points from %d swath files -> %d cell buckets (%d memory spills) in %s\n",
		stats.PointsScanned, len(paths), stats.CellsWritten, stats.Spills, out)
	return nil
}
