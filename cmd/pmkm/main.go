// Command pmkm clusters grid-bucket files with partial/merge k-means
// through the query engine: the optimizer sizes chunks from the memory
// budget and picks the partial-operator clone count from the worker
// budget, then the executor runs the pipelined plan over all cells.
//
// Example:
//
//	pmkm -data data/ -k 40 -restarts 10 -mem 64MB -workers 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"streamkm"
	"streamkm/internal/dataset"
	"streamkm/internal/engine"
	"streamkm/internal/grid"
)

func main() {
	var (
		data      = flag.String("data", "data", "directory of .skmb bucket files")
		k         = flag.Int("k", 40, "clusters per cell")
		restarts  = flag.Int("restarts", 10, "seed sets per partition")
		mem       = flag.String("mem", "8MB", "memory budget for one partial operator (e.g. 512KB, 8MB)")
		workers   = flag.Int("workers", 4, "worker budget for cloned operators")
		strategy  = flag.String("strategy", "random", "slicing strategy: random, salami, spatial")
		merge     = flag.String("merge", "collective", "merge mode: collective or incremental")
		seed      = flag.Uint64("seed", 1, "random seed")
		explain   = flag.Bool("explain", false, "print the logical and physical plans and exit")
		adaptive  = flag.Bool("adaptive", false, "start with 1 partial clone and let the re-optimizer scale up under backlog")
		csvPath   = flag.String("csv", "", "cluster a single CSV file of numeric columns instead of a bucket directory")
		showTrace = flag.Bool("trace", false, "print the operator-span timeline after execution")
	)
	flag.Parse()
	if *csvPath != "" {
		if err := runCSV(*csvPath, *k, *restarts, *mem, *workers, *strategy, *merge, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "pmkm:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*data, *k, *restarts, *mem, *workers, *strategy, *merge, *seed, *explain, *adaptive, *showTrace); err != nil {
		fmt.Fprintln(os.Stderr, "pmkm:", err)
		os.Exit(1)
	}
}

// runCSV clusters a single CSV file as one "cell" through the engine,
// letting the library be tried on arbitrary numeric data.
func runCSV(path string, k, restarts int, mem string, workers int, strategy, merge string, seed uint64) error {
	budget, err := parseBytes(mem)
	if err != nil {
		return err
	}
	strat, err := streamkm.ParseStrategy(strategy)
	if err != nil {
		return err
	}
	mode, err := streamkm.ParseMergeMode(merge)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	set, err := dataset.ReadCSV(f, dataset.CSVOptions{})
	closeErr := f.Close()
	if err != nil {
		return err
	}
	if closeErr != nil {
		return closeErr
	}
	cells := []engine.Cell{{Key: grid.CellKey{}, Points: set}}
	q := engine.Query{K: k, Restarts: restarts, Strategy: strat, MergeMode: mode, Seed: seed}
	results, plan, stats, err := engine.Run(context.Background(), cells, q, engine.Resources{
		MemoryBytes: budget, Workers: workers,
	})
	if err != nil {
		return err
	}
	fmt.Print(plan.Explain())
	r := results[0]
	fmt.Printf("\n%d points, dim %d -> %d centroids across %d chunks\n",
		set.Len(), set.Dim(), len(r.Result.Centroids), r.Partitions)
	fmt.Printf("merge MSE %.4f, point MSE %.4f, elapsed %v\n", r.Result.MSE, r.PointMSE, stats.Elapsed)
	for i, c := range r.Result.Centroids {
		fmt.Printf("  w=%10.1f  %v\n", r.Result.Weights[i], c)
	}
	return nil
}

func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "GB"):
		mult, s = 1<<30, strings.TrimSuffix(s, "GB")
	case strings.HasSuffix(s, "MB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MB")
	case strings.HasSuffix(s, "KB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KB")
	case strings.HasSuffix(s, "B"):
		s = strings.TrimSuffix(s, "B")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %w", s, err)
	}
	return n * mult, nil
}

func run(data string, k, restarts int, mem string, workers int, strategy, merge string, seed uint64, explain, adaptive, showTrace bool) error {
	budget, err := parseBytes(mem)
	if err != nil {
		return err
	}
	strat, err := streamkm.ParseStrategy(strategy)
	if err != nil {
		return err
	}
	mode, err := streamkm.ParseMergeMode(merge)
	if err != nil {
		return err
	}
	index, err := grid.IndexDir(data)
	if err != nil {
		return err
	}
	if len(index) == 0 {
		return fmt.Errorf("no bucket files in %s (run datagen first)", data)
	}
	var cells []engine.Cell
	for _, entry := range index {
		key, set, err := grid.ReadBucketFile(entry.Path)
		if err != nil {
			return err
		}
		cells = append(cells, engine.Cell{Key: key, Points: set})
	}
	q := engine.Query{
		K:         k,
		Restarts:  restarts,
		Strategy:  strat,
		MergeMode: mode,
		Seed:      seed,
	}
	if explain {
		sizes := make([]int, len(cells))
		for i, c := range cells {
			sizes[i] = c.Points.Len()
		}
		plan, err := engine.Optimize(q, sizes, cells[0].Points.Dim(), engine.Resources{
			MemoryBytes: budget, Workers: workers,
		})
		if err != nil {
			return err
		}
		logical := engine.LogicalFor(q, len(cells), false)
		fmt.Println("LogicalPlan:")
		fmt.Print(logical.String())
		fmt.Println("Annotated:")
		fmt.Print(logical.AnnotatePhysical(plan).String())
		fmt.Print(plan.Explain())
		return nil
	}
	var (
		results []engine.CellResult
		plan    engine.PhysicalPlan
		stats   *engine.ExecStats
		events  []engine.ReoptEvent
	)
	if adaptive {
		sizes := make([]int, len(cells))
		for i, c := range cells {
			sizes[i] = c.Points.Len()
		}
		plan, err = engine.Optimize(q, sizes, cells[0].Points.Dim(), engine.Resources{
			MemoryBytes: budget, Workers: workers,
		})
		if err != nil {
			return err
		}
		plan.PartialClones = 1 // start minimal; the re-optimizer scales up
		results, stats, events, err = engine.ExecuteAdaptive(context.Background(), cells, q, plan,
			engine.ReoptPolicy{MaxClones: workers})
	} else {
		results, plan, stats, err = engine.Run(context.Background(), cells, q, engine.Resources{
			MemoryBytes: budget, Workers: workers,
		})
	}
	if err != nil {
		return err
	}
	fmt.Print(plan.Explain())
	for _, e := range events {
		fmt.Println("  reopt:", e)
	}
	fmt.Printf("\n%-10s %8s %6s %14s %14s %14s\n",
		"cell", "points", "chunks", "merge MSE", "point MSE", "partial (ms)")
	for i, r := range results {
		fmt.Printf("%-10s %8d %6d %14.2f %14.2f %14d\n",
			r.Key, cells[i].Points.Len(), r.Partitions, r.Result.MSE, r.PointMSE,
			r.PartialTime.Milliseconds())
	}
	fmt.Printf("\nprocessed %d cells / %d chunks in %v\n", stats.Cells, stats.Chunks, stats.Elapsed)
	for _, op := range stats.Registry.All() {
		fmt.Println(" ", op)
	}
	if showTrace {
		fmt.Println()
		fmt.Print(stats.Trace.Timeline(72))
	}
	return nil
}
