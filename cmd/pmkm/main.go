// Command pmkm clusters grid-bucket files with partial/merge k-means
// through the query engine: the optimizer sizes chunks from the memory
// budget and picks the partial-operator clone count from the worker
// budget, then the executor runs the pipelined plan over all cells.
//
// Example:
//
//	pmkm -data data/ -k 40 -restarts 10 -mem 64MB -workers 4
//
// Engine features compose on one executor, so the flags stack:
// -max-retries N supervises the plan, retrying failed chunks with
// exponential backoff and restarting the plan from its execution
// journal after a crash; -adaptive starts with one partial clone and
// lets the re-optimizer scale up under backlog (combining both gives a
// supervised adaptive run); -trace prints the operator-span timeline;
// -salvage reads damaged bucket files for their valid prefix (warning
// on stderr) instead of aborting on the first corrupt byte.
//
// The partial stage is a pluggable summarizer operator: -summarizer
// selects kmeans (the paper's partial k-means, default), ecvq
// (entropy-constrained VQ with an adaptive per-chunk cluster count;
// tune with -ecvq-maxk and -ecvq-lambda), or coreset (a StreamKM++-
// style coreset tree; tune with -coreset-size). -seed-method swaps the
// k-means seeding strategy (random, heaviest, kmeans++, kmeans||); it
// applies to the partial stage for -summarizer=kmeans and always to
// the merge. Every operator honors the bit-identical contract: equal
// seeds give equal centroids whether chunks run locally, resume from a
// journal, or ship to -remote workers.
//
// The resource governor adds hard bounds: -deadline caps wall-clock
// time, -progress-timeout arms a stall watchdog that cancels and
// retries a wedged stage, and -mem-budget shrinks chunk size and
// fan-out until the in-flight working set fits. With -allow-degraded a
// run that exhausts a bound returns the clustering of every surviving
// partition, prints a one-line structured quality summary on stderr,
// and exits with status 3 (instead of 1 for a hard failure).
//
// Observability: -report out.json writes the engine's unified run
// report (schema streamkm.run-report/v1) with per-stage counters,
// latency histograms, and governor decisions; -progress prints a live
// one-line ticker to stderr (chunks/cells done, ETA, degraded count);
// -cpuprofile and -memprofile write pprof profiles, and -pprof ADDR
// serves net/http/pprof for the run's duration.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"streamkm"
	"streamkm/internal/buildinfo"
	"streamkm/internal/dataset"
	"streamkm/internal/dist"
	"streamkm/internal/engine"
	"streamkm/internal/grid"
	"streamkm/internal/obs"
	"streamkm/internal/stream"
)

// exitDegraded is pmkm's exit status for a run that completed with a
// degraded (partial) result — distinct from 1, the hard-failure status,
// so scripts can tell "partial answer" from "no answer".
const exitDegraded = 3

func main() {
	os.Exit(realMain())
}

// realMain runs the command and returns its exit status, so deferred
// teardown (stopping the CPU profiler, writing the heap profile) runs
// before the process exits.
func realMain() int {
	var (
		data       = flag.String("data", "data", "directory of .skmb bucket files")
		k          = flag.Int("k", 40, "clusters per cell")
		restarts   = flag.Int("restarts", 10, "seed sets per partition")
		mem        = flag.String("mem", "8MB", "memory budget for one partial operator (e.g. 512KB, 8MB)")
		workers    = flag.Int("workers", 4, "worker budget for cloned operators")
		rworkers   = flag.Int("restart-workers", 0, "goroutines fanning one chunk's restarts (0/1 = serial; any value is bit-identical)")
		strategy   = flag.String("strategy", "random", "slicing strategy: random, salami, spatial")
		merge      = flag.String("merge", "collective", "merge mode: collective or incremental")
		mergeSolv  = flag.String("merge-solver", "", "merge-stage Lloyd kernel: lloyd (default) or minibatch (mini-batch gradient steps; faster on large merge pools)")
		summarizer = flag.String("summarizer", "kmeans", "chunk-summarizer operator: kmeans, ecvq, coreset")
		seedMethod = flag.String("seed-method", "", "k-means seeding: random, heaviest, kmeans++, kmeans|| (default: random partial, heaviest merge)")
		coresetSz  = flag.Int("coreset-size", 0, "weighted points kept per chunk by -summarizer=coreset (0 = 10*k)")
		ecvqMaxK   = flag.Int("ecvq-maxk", 0, "max clusters per chunk for -summarizer=ecvq (0 = 2*k)")
		ecvqLambda = flag.Float64("ecvq-lambda", 0, "rate-distortion trade-off for -summarizer=ecvq (0 = pure distortion)")
		seed       = flag.Uint64("seed", 1, "random seed")
		explain    = flag.Bool("explain", false, "print the logical and physical plans and exit")
		adaptive   = flag.Bool("adaptive", false, "start with 1 partial clone and let the re-optimizer scale up under backlog")
		csvPath    = flag.String("csv", "", "cluster a single CSV file of numeric columns instead of a bucket directory")
		snapEvery  = flag.Int("snapshot-every", 0, "with -csv: stream the rows through a sliding-window clusterer and query a snapshot every N points (0 = one-shot engine run)")
		windowSz   = flag.Int("window", 50, "chunks covered by the sliding window for -snapshot-every")
		showTrace  = flag.Bool("trace", false, "print the operator-span timeline after execution")
		maxRetries = flag.Int("max-retries", 0, "run supervised: retry each failed chunk up to N times and restart the plan from its journal after a crash")
		salvage    = flag.Bool("salvage", false, "recover the valid prefix of damaged bucket files instead of aborting")
		remote     = flag.String("remote", "", "comma-separated streamkm-worker addresses (host:port,...): ship each chunk to a remote worker and merge centrally")

		deadline     = flag.Duration("deadline", 0, "wall-clock bound for the whole run (0 = unlimited)")
		progressTO   = flag.Duration("progress-timeout", 0, "stall watchdog: cancel a stage that holds pending work but makes no progress for this long (0 = off)")
		memBudget    = flag.String("mem-budget", "0", "runtime memory budget for in-flight point data (e.g. 512KB); shrinks chunk size and fan-out to fit (0 = unlimited)")
		allowDegrade = flag.Bool("allow-degraded", false, "on deadline/stall/permanent chunk failure, return the surviving partitions as a degraded result (exit status 3) instead of failing")

		reportPath = flag.String("report", "", "write the unified JSON run report (schema streamkm.run-report/v1) to this file")
		progress   = flag.Bool("progress", false, "print a live progress line (chunks/cells done, ETA, degraded count) to stderr every second")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the run's duration")
		version    = flag.Bool("version", false, "print the build identity and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String("pmkm"))
		return 0
	}
	stopProfiling, err := startProfiling(*cpuProfile, *memProfile, *pprofAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmkm:", err)
		return 1
	}
	defer stopProfiling()
	sum := sumFlags{
		summarizer: *summarizer, seedMethod: *seedMethod, mergeSolver: *mergeSolv,
		coresetSize: *coresetSz, ecvqMaxK: *ecvqMaxK, ecvqLambda: *ecvqLambda,
	}
	if *snapEvery > 0 {
		if *csvPath == "" {
			fmt.Fprintln(os.Stderr, "pmkm: -snapshot-every requires -csv")
			return 1
		}
		if err := runWindowed(*csvPath, *k, *restarts, *snapEvery, *windowSz, *mem, *mergeSolv, *seed, *reportPath); err != nil {
			fmt.Fprintln(os.Stderr, "pmkm:", err)
			return 1
		}
		return 0
	}
	if *csvPath != "" {
		if err := runCSV(*csvPath, *k, *restarts, *mem, *workers, *rworkers, *strategy, *merge, *seed, sum); err != nil {
			fmt.Fprintln(os.Stderr, "pmkm:", err)
			return 1
		}
		return 0
	}
	cfg := runConfig{
		data: *data, mem: *mem, strategy: *strategy, merge: *merge, sum: sum,
		k: *k, restarts: *restarts, workers: *workers, restartWorkers: *rworkers, seed: *seed,
		explain: *explain, adaptive: *adaptive, trace: *showTrace,
		maxRetries: *maxRetries, salvage: *salvage, remote: *remote,
		deadline: *deadline, progressTimeout: *progressTO,
		memBudget: *memBudget, allowDegraded: *allowDegrade,
		report: *reportPath, progress: *progress,
	}
	degraded, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pmkm:", err)
		return 1
	}
	if degraded != nil {
		// One structured line for scripts, on stderr so the result table
		// on stdout stays clean, then the distinct degraded exit status.
		fmt.Fprintf(os.Stderr, "pmkm: %s\n", degraded)
		return exitDegraded
	}
	return 0
}

// startProfiling arms the requested profiling hooks and returns the
// teardown that stops the CPU profile and writes the heap profile.
func startProfiling(cpuPath, memPath, pprofAddr string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	if pprofAddr != "" {
		// The blank net/http/pprof import registered its handlers on the
		// default mux. Listen synchronously so a bad address fails fast.
		ln, err := net.Listen("tcp", pprofAddr)
		if err != nil {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "pmkm: pprof server on http://%s/debug/pprof/\n", ln.Addr())
		go func() { _ = http.Serve(ln, nil) }()
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "pmkm: cpuprofile:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pmkm: memprofile:", err)
				return
			}
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "pmkm: memprofile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "pmkm: memprofile:", err)
			}
		}
	}, nil
}

// sumFlags carries the operator-selection flags shared by both
// invocation forms.
type sumFlags struct {
	summarizer, seedMethod string
	mergeSolver            string
	coresetSize, ecvqMaxK  int
	ecvqLambda             float64
}

// apply stamps the operator flags onto a query.
func (s sumFlags) apply(q *engine.Query) {
	q.Summarizer = s.summarizer
	q.SeedMethod = s.seedMethod
	q.MergeSolver = s.mergeSolver
	q.CoresetSize = s.coresetSize
	q.ECVQMaxK = s.ecvqMaxK
	q.ECVQLambda = s.ecvqLambda
}

// runWindowed streams a CSV file through the facade's sliding-window
// clusterer, querying a snapshot every N points — the continuous-query
// regime served by the incremental merge index. The per-chunk budget is
// derived from -mem exactly like the engine's planner would: points
// that fit the budget, floored at k.
func runWindowed(path string, k, restarts, every, window int, mem, solver string, seed uint64, reportPath string) error {
	budget, err := parseBytes(mem)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	set, err := dataset.ReadCSV(f, dataset.CSVOptions{})
	closeErr := f.Close()
	if err != nil {
		return err
	}
	if closeErr != nil {
		return closeErr
	}
	chunkPoints := int(budget / int64(set.Dim()*8))
	if chunkPoints < k {
		chunkPoints = k
	}
	w, err := streamkm.NewWindowedClusterer(set.Dim(), streamkm.WindowedOptions{
		K:            k,
		ChunkPoints:  chunkPoints,
		WindowChunks: window,
		Restarts:     restarts,
		Seed:         seed,
		MergeSolver:  solver,
	})
	if err != nil {
		return err
	}
	start := time.Now()
	var last *streamkm.Result
	queries := 0
	for i := 0; i < set.Len(); i++ {
		if err := w.Push(set.At(i)); err != nil {
			return err
		}
		// The index needs at least k representatives before it can answer.
		if (i+1)%every == 0 && w.Consumed() >= k {
			last, err = w.Snapshot()
			if err != nil {
				return err
			}
			queries++
		}
	}
	if last == nil || w.Consumed()%every != 0 {
		if w.Consumed() < k {
			return fmt.Errorf("stream held %d points, need at least k=%d", w.Consumed(), k)
		}
		last, err = w.Snapshot()
		if err != nil {
			return err
		}
		queries++
	}
	elapsed := time.Since(start)
	fmt.Printf("streamed %d points (dim %d) through a %d-chunk window of %d-point chunks in %v\n",
		w.Consumed(), set.Dim(), window, chunkPoints, elapsed)
	stats := w.SnapshotStats()
	fmt.Printf("%d snapshots: %d cache hits, %d warm starts, %d resyncs, %d refine iterations\n",
		queries, stats.CacheHits, stats.WarmStarts, stats.Resyncs, stats.RefineIterations)
	fmt.Printf("final snapshot: merge MSE %.4f over %d live chunks\n", last.MergeMSE, last.Partitions)
	for i, c := range last.Centroids {
		fmt.Printf("  w=%10.1f  %v\n", last.Weights[i], c)
	}
	if reportPath != "" {
		b, err := w.Report().JSON()
		if err != nil {
			return fmt.Errorf("report: %w", err)
		}
		if err := os.WriteFile(reportPath, append(b, '\n'), 0o644); err != nil {
			return fmt.Errorf("report: %w", err)
		}
	}
	return nil
}

// runCSV clusters a single CSV file as one "cell" through the engine,
// letting the library be tried on arbitrary numeric data.
func runCSV(path string, k, restarts int, mem string, workers, restartWorkers int, strategy, merge string, seed uint64, sum sumFlags) error {
	budget, err := parseBytes(mem)
	if err != nil {
		return err
	}
	strat, err := streamkm.ParseStrategy(strategy)
	if err != nil {
		return err
	}
	mode, err := streamkm.ParseMergeMode(merge)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	set, err := dataset.ReadCSV(f, dataset.CSVOptions{})
	closeErr := f.Close()
	if err != nil {
		return err
	}
	if closeErr != nil {
		return closeErr
	}
	cells := []engine.Cell{{Key: grid.CellKey{}, Points: set}}
	q := engine.Query{K: k, Restarts: restarts, Strategy: strat, MergeMode: mode, Seed: seed, Workers: restartWorkers}
	sum.apply(&q)
	results, plan, stats, err := engine.Run(context.Background(), cells, q, engine.Resources{
		MemoryBytes: budget, Workers: workers,
	})
	if err != nil {
		return err
	}
	fmt.Print(plan.Explain())
	r := results[0]
	fmt.Printf("\n%d points, dim %d -> %d centroids across %d chunks\n",
		set.Len(), set.Dim(), len(r.Result.Centroids), r.Partitions)
	fmt.Printf("merge MSE %.4f, point MSE %.4f, elapsed %v\n", r.Result.MSE, r.PointMSE, stats.Elapsed)
	for i, c := range r.Result.Centroids {
		fmt.Printf("  w=%10.1f  %v\n", r.Result.Weights[i], c)
	}
	return nil
}

func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "GB"):
		mult, s = 1<<30, strings.TrimSuffix(s, "GB")
	case strings.HasSuffix(s, "MB"):
		mult, s = 1<<20, strings.TrimSuffix(s, "MB")
	case strings.HasSuffix(s, "KB"):
		mult, s = 1<<10, strings.TrimSuffix(s, "KB")
	case strings.HasSuffix(s, "B"):
		s = strings.TrimSuffix(s, "B")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %w", s, err)
	}
	return n * mult, nil
}

// runConfig carries the bucket-directory invocation's flags.
type runConfig struct {
	data, mem, strategy, merge string
	sum                        sumFlags
	k, restarts, workers       int
	restartWorkers             int
	seed                       uint64
	explain, adaptive, trace   bool
	maxRetries                 int
	salvage                    bool
	remote                     string
	deadline                   time.Duration
	progressTimeout            time.Duration
	memBudget                  string
	allowDegraded              bool
	report                     string
	progress                   bool
}

// startProgress prints a one-line status to w every interval, read live
// from the engine's metrics registry, until the returned stop function
// is called. The ETA extrapolates from the observed chunk rate.
func startProgress(reg *obs.Registry, w io.Writer, interval time.Duration) func() {
	start := time.Now()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				fmt.Fprintln(w, progressLine(reg, time.Since(start)))
			}
		}
	}()
	return func() { close(done); wg.Wait() }
}

// progressLine renders one ticker line from the live registry.
func progressLine(reg *obs.Registry, elapsed time.Duration) string {
	chunksDone := reg.Counter(obs.EngineChunksDone, "").Value()
	chunksTotal := reg.Counter(obs.EngineChunksTotal, "").Value()
	cellsMerged := reg.Counter(obs.EngineCellsMerged, "").Value()
	cellsTotal := reg.Counter(obs.EngineCellsTotal, "").Value()
	line := fmt.Sprintf("pmkm: %7s  chunks %d/%d  cells %d/%d",
		elapsed.Round(100*time.Millisecond), chunksDone, chunksTotal, cellsMerged, cellsTotal)
	if chunksDone > 0 && chunksDone < chunksTotal {
		eta := time.Duration(float64(elapsed) / float64(chunksDone) * float64(chunksTotal-chunksDone))
		line += fmt.Sprintf("  eta %s", eta.Round(100*time.Millisecond))
	}
	if degraded := reg.Counter(obs.EngineDegradedChunks, "").Value(); degraded > 0 {
		line += fmt.Sprintf("  degraded %d", degraded)
	}
	return line
}

// writeReport renders the execution's unified run report to path.
func writeReport(path string, stats *engine.ExecStats) error {
	b, err := stats.Report().JSON()
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	return nil
}

// salvageIndex indexes a bucket directory file by file, warning about
// and skipping files whose headers are unreadable instead of failing
// the whole directory the way IndexDir does.
func salvageIndex(dir string) ([]grid.IndexEntry, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []grid.IndexEntry
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".skmb") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		single, err := grid.IndexFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pmkm: %s: unreadable header, skipping cell: %v\n", path, err)
			continue
		}
		out = append(out, single)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Lat != out[j].Key.Lat {
			return out[i].Key.Lat < out[j].Key.Lat
		}
		return out[i].Key.Lon < out[j].Key.Lon
	})
	return out, nil
}

// loadCells reads every indexed bucket. With salvage enabled, damaged
// files contribute their valid prefix (warning on stderr) and files with
// nothing recoverable are skipped instead of failing the run.
func loadCells(index []grid.IndexEntry, salvage bool) ([]engine.Cell, error) {
	var cells []engine.Cell
	for _, entry := range index {
		var (
			key grid.CellKey
			set *dataset.Set
			err error
		)
		if salvage {
			key, set, err = grid.SalvageBucketFile(entry.Path)
			if err != nil {
				if set == nil || set.Len() == 0 {
					fmt.Fprintf(os.Stderr, "pmkm: %s: nothing salvageable, skipping cell: %v\n", entry.Path, err)
					continue
				}
				fmt.Fprintf(os.Stderr, "pmkm: %s: salvaged %d of %d points: %v\n",
					entry.Path, set.Len(), entry.Count, err)
			}
		} else {
			key, set, err = grid.ReadBucketFile(entry.Path)
			if err != nil {
				return nil, err
			}
		}
		cells = append(cells, engine.Cell{Key: key, Points: set})
	}
	return cells, nil
}

// run executes the bucket-directory invocation. A nil error with a
// non-nil DegradedResult means the run answered partially under
// -allow-degraded; main turns that into the distinct exit status.
func run(cfg runConfig) (*engine.DegradedResult, error) {
	budget, err := parseBytes(cfg.mem)
	if err != nil {
		return nil, err
	}
	var runtimeBudget int64
	if cfg.memBudget != "" {
		runtimeBudget, err = parseBytes(cfg.memBudget)
		if err != nil {
			return nil, err
		}
	}
	strat, err := streamkm.ParseStrategy(cfg.strategy)
	if err != nil {
		return nil, err
	}
	mode, err := streamkm.ParseMergeMode(cfg.merge)
	if err != nil {
		return nil, err
	}
	index, err := grid.IndexDir(cfg.data)
	if err != nil {
		// Indexing reads every header up front, so one unreadable file
		// would otherwise veto a salvage run before loadCells gets a
		// chance to skip it. Fall back to indexing file by file.
		if !cfg.salvage {
			return nil, err
		}
		index, err = salvageIndex(cfg.data)
		if err != nil {
			return nil, err
		}
	}
	if len(index) == 0 {
		return nil, fmt.Errorf("no bucket files in %s (run datagen first)", cfg.data)
	}
	cells, err := loadCells(index, cfg.salvage)
	if err != nil {
		return nil, err
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("no usable bucket files in %s", cfg.data)
	}
	q := engine.Query{
		K:         cfg.k,
		Restarts:  cfg.restarts,
		Strategy:  strat,
		MergeMode: mode,
		Seed:      cfg.seed,
		Workers:   cfg.restartWorkers,
	}
	cfg.sum.apply(&q)
	res := engine.Resources{MemoryBytes: budget, Workers: cfg.workers}
	sizes := make([]int, len(cells))
	for i, c := range cells {
		sizes[i] = c.Points.Len()
	}
	if cfg.explain {
		plan, err := engine.Optimize(q, sizes, cells[0].Points.Dim(), res)
		if err != nil {
			return nil, err
		}
		logical := engine.LogicalFor(q, len(cells), false)
		fmt.Println("LogicalPlan:")
		fmt.Print(logical.String())
		fmt.Println("Annotated:")
		fmt.Print(logical.AnnotatePhysical(plan).String())
		fmt.Print(plan.Explain())
		return nil, nil
	}
	plan, err := engine.Optimize(q, sizes, cells[0].Points.Dim(), res)
	if err != nil {
		return nil, err
	}
	// Features compose on the one executor: -adaptive, -max-retries and
	// the governor flags are independent options, not mutually exclusive
	// modes.
	var opts []engine.ExecOption
	if cfg.adaptive {
		plan.PartialClones = 1 // start minimal; the re-optimizer scales up
		opts = append(opts, engine.WithReopt(engine.ReoptPolicy{MaxClones: cfg.workers}))
	}
	if cfg.maxRetries > 0 {
		opts = append(opts,
			engine.WithRetry(stream.RetryPolicy{MaxRetries: cfg.maxRetries}),
			engine.WithRestarts(1))
	}
	if cfg.deadline > 0 {
		opts = append(opts, engine.WithDeadline(cfg.deadline))
	}
	if cfg.progressTimeout > 0 {
		opts = append(opts, engine.WithProgressTimeout(cfg.progressTimeout))
	}
	if runtimeBudget > 0 {
		opts = append(opts, engine.WithMemoryBudget(runtimeBudget))
	}
	if cfg.allowDegraded {
		opts = append(opts, engine.WithDegradedResults())
	}
	// pmkm owns the metrics registry so the progress ticker can read
	// counters while the engine is still writing them.
	reg := obs.NewRegistry()
	opts = append(opts, engine.WithObserver(reg))
	var workerAddrs []string
	if cfg.remote != "" {
		for _, a := range strings.Split(cfg.remote, ",") {
			if a = strings.TrimSpace(a); a != "" {
				workerAddrs = append(workerAddrs, a)
			}
		}
		// A chunk should survive the loss of every worker but one, so the
		// re-lease budget defaults to the worker count when -max-retries
		// doesn't raise it.
		leaseRetries := cfg.maxRetries
		if leaseRetries < len(workerAddrs) {
			leaseRetries = len(workerAddrs)
		}
		pool, err := dist.NewPool(context.Background(), dist.PoolConfig{
			Addrs:           workerAddrs,
			Retry:           stream.RetryPolicy{MaxRetries: leaseRetries},
			ProgressTimeout: cfg.progressTimeout,
			Seed:            cfg.seed,
			Obs:             reg,
		})
		if err != nil {
			return nil, err
		}
		defer pool.Close()
		fmt.Fprintf(os.Stderr, "pmkm: distributing chunks across %d remote worker(s)\n", pool.Live())
		opts = append(opts, engine.WithRemoteWorkers(pool))
	}
	var stopProgress func()
	if cfg.progress {
		stopProgress = startProgress(reg, os.Stderr, time.Second)
	}
	results, stats, err := engine.NewExec(q, plan, opts...).Execute(context.Background(), cells)
	if stopProgress != nil {
		stopProgress()
	}
	if err != nil {
		return nil, err
	}
	if cfg.report != "" {
		if err := writeReport(cfg.report, stats); err != nil {
			return nil, err
		}
	}
	fmt.Print(plan.Explain())
	if adm := stats.Admission; adm != nil && adm.Constrained() {
		fmt.Println("  governor:", adm)
	}
	for _, e := range stats.ReoptEvents {
		fmt.Println("  reopt:", e)
	}
	// A degraded run may return fewer results than cells, so look points
	// up by key instead of pairing results with cells positionally.
	pointsByKey := make(map[grid.CellKey]int, len(cells))
	for _, c := range cells {
		pointsByKey[c.Key] = c.Points.Len()
	}
	fmt.Printf("\n%-10s %8s %6s %6s %14s %14s %14s\n",
		"cell", "points", "chunks", "lost", "merge MSE", "point MSE", "partial (ms)")
	for _, r := range results {
		fmt.Printf("%-10s %8d %6d %6d %14.2f %14.2f %14d\n",
			r.Key, pointsByKey[r.Key], r.Partitions, r.LostChunks, r.Result.MSE, r.PointMSE,
			r.PartialTime.Milliseconds())
	}
	fmt.Printf("\nprocessed %d cells / %d chunks in %v\n", stats.Cells, stats.Chunks, stats.Elapsed)
	if stats.Restarts > 0 {
		fmt.Printf("recovered from %d plan crash(es) via the execution journal\n", stats.Restarts)
	}
	if stats.Stalls > 0 {
		fmt.Printf("stall watchdog cancelled %d wedged attempt(s)\n", stats.Stalls)
	}
	for _, op := range stats.Registry.All() {
		fmt.Println(" ", op)
	}
	if len(workerAddrs) > 0 {
		fmt.Printf("\n%-22s %8s %8s %8s %6s %12s %12s\n",
			"worker", "chunks", "retries", "dups", "evict", "sent (B)", "recv (B)")
		for _, addr := range workerAddrs {
			fmt.Printf("%-22s %8d %8d %8d %6d %12d %12d\n", addr,
				reg.Counter(obs.DistChunksDone, addr).Value(),
				reg.Counter(obs.DistRetries, addr).Value(),
				reg.Counter(obs.DistDupResults, addr).Value(),
				reg.Counter(obs.DistEvictions, addr).Value(),
				reg.Counter(obs.DistBytesSent, addr).Value(),
				reg.Counter(obs.DistBytesRecv, addr).Value())
		}
	}
	if cfg.trace {
		fmt.Println()
		fmt.Print(stats.Trace.Timeline(72))
	}
	return stats.Degraded, nil
}
