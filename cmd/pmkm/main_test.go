package main

import (
	"os"
	"path/filepath"
	"testing"

	"streamkm/internal/dataset"
	"streamkm/internal/grid"
)

// writeTestData creates a bucket directory with two small cells.
func writeTestData(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	spec := dataset.DefaultCellSpec()
	spec.Clusters = 5
	spec.Dim = 4
	for i, key := range []grid.CellKey{{Lat: 1, Lon: 1}, {Lat: 1, Lon: 2}} {
		set, err := dataset.GenerateCell(spec, 300, uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		if err := grid.WriteBucketFile(filepath.Join(dir, grid.BucketFileName(key)), key, set); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// baseConfig returns a working invocation against dir.
func baseConfig(dir string) runConfig {
	return runConfig{
		data: dir, mem: "8KB", strategy: "random", merge: "collective",
		k: 5, restarts: 2, workers: 2, seed: 1,
	}
}

func TestRunHappyPath(t *testing.T) {
	dir := writeTestData(t)
	cfg := baseConfig(dir)
	cfg.trace = true
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	// explain-only path
	cfg = baseConfig(dir)
	cfg.explain = true
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	// adaptive path
	cfg = baseConfig(dir)
	cfg.adaptive = true
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	// supervised path
	cfg = baseConfig(dir)
	cfg.maxRetries = 3
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestRunComposedFeatures covers the flag combination the CLI used to
// reject structurally: -adaptive and -max-retries are independent
// executor options now, so one run can be supervised, adaptive, and
// traced at once.
func TestRunComposedFeatures(t *testing.T) {
	dir := writeTestData(t)
	cfg := baseConfig(dir)
	cfg.adaptive = true
	cfg.maxRetries = 2
	cfg.trace = true
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunSalvagesDamagedBucket(t *testing.T) {
	dir := writeTestData(t)
	// Truncate one bucket mid-record.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	victim := filepath.Join(dir, entries[0].Name())
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(victim, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// Default read aborts on the damage; -salvage completes.
	if err := run(baseConfig(dir)); err == nil {
		t.Fatal("damaged bucket should fail a strict run")
	}
	cfg := baseConfig(dir)
	cfg.salvage = true
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	// Clobber another bucket's header entirely: indexing can't read it,
	// so a salvage run must skip the cell rather than abort the
	// directory.
	victim2 := filepath.Join(dir, entries[1].Name())
	if err := os.WriteFile(victim2, []byte("GARBAGE!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(cfg); err != nil {
		t.Fatalf("salvage run should skip the unindexable cell: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	dir := writeTestData(t)
	cfg := baseConfig(dir)
	cfg.mem = "bogus"
	if err := run(cfg); err == nil {
		t.Fatal("bad mem should error")
	}
	cfg = baseConfig(dir)
	cfg.strategy = "zigzag"
	if err := run(cfg); err == nil {
		t.Fatal("bad strategy should error")
	}
	cfg = baseConfig(dir)
	cfg.merge = "eager"
	if err := run(cfg); err == nil {
		t.Fatal("bad merge mode should error")
	}
	if err := run(baseConfig(t.TempDir())); err == nil {
		t.Fatal("empty data dir should error")
	}
}

func TestRunCSVHappyPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pts.csv")
	var rows []byte
	for i := 0; i < 40; i++ {
		x := byte('0' + i%10)
		rows = append(rows, x, ',', x, '\n')
	}
	if err := os.WriteFile(path, rows, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runCSV(path, 3, 2, "8KB", 2, 2, "random", "collective", 1); err != nil {
		t.Fatal(err)
	}
	if err := runCSV(filepath.Join(t.TempDir(), "missing.csv"), 3, 2, "8KB", 2, 0, "random", "collective", 1); err == nil {
		t.Fatal("missing csv should error")
	}
}

func TestParseBytes(t *testing.T) {
	cases := map[string]int64{
		"8MB":    8 << 20,
		"512KB":  512 << 10,
		"1GB":    1 << 30,
		"100B":   100,
		"4096":   4096,
		" 2 MB ": 2 << 20,
		"2mb":    2 << 20,
	}
	for in, want := range cases {
		got, err := parseBytes(in)
		if err != nil {
			t.Errorf("parseBytes(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("parseBytes(%q) = %d, want %d", in, got, want)
		}
	}
	for _, bad := range []string{"", "MB", "x8MB", "8.5MB"} {
		if _, err := parseBytes(bad); err == nil {
			t.Errorf("parseBytes(%q) should error", bad)
		}
	}
}
