package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"streamkm/internal/dataset"
	"streamkm/internal/grid"
	"streamkm/internal/obs"
)

// writeTestData creates a bucket directory with two small cells.
func writeTestData(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	spec := dataset.DefaultCellSpec()
	spec.Clusters = 5
	spec.Dim = 4
	for i, key := range []grid.CellKey{{Lat: 1, Lon: 1}, {Lat: 1, Lon: 2}} {
		set, err := dataset.GenerateCell(spec, 300, uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		if err := grid.WriteBucketFile(filepath.Join(dir, grid.BucketFileName(key)), key, set); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// baseConfig returns a working invocation against dir.
func baseConfig(dir string) runConfig {
	return runConfig{
		data: dir, mem: "8KB", strategy: "random", merge: "collective",
		k: 5, restarts: 2, workers: 2, seed: 1,
	}
}

// runOK asserts a run completes without error or degradation.
func runOK(t *testing.T, cfg runConfig) {
	t.Helper()
	degraded, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if degraded != nil {
		t.Fatalf("unexpected degraded result: %v", degraded)
	}
}

func TestRunHappyPath(t *testing.T) {
	dir := writeTestData(t)
	cfg := baseConfig(dir)
	cfg.trace = true
	runOK(t, cfg)
	// explain-only path
	cfg = baseConfig(dir)
	cfg.explain = true
	runOK(t, cfg)
	// adaptive path
	cfg = baseConfig(dir)
	cfg.adaptive = true
	runOK(t, cfg)
	// supervised path
	cfg = baseConfig(dir)
	cfg.maxRetries = 3
	runOK(t, cfg)
}

// TestRunComposedFeatures covers the flag combination the CLI used to
// reject structurally: -adaptive and -max-retries are independent
// executor options now, so one run can be supervised, adaptive, and
// traced at once.
func TestRunComposedFeatures(t *testing.T) {
	dir := writeTestData(t)
	cfg := baseConfig(dir)
	cfg.adaptive = true
	cfg.maxRetries = 2
	cfg.trace = true
	runOK(t, cfg)
}

func TestRunSalvagesDamagedBucket(t *testing.T) {
	dir := writeTestData(t)
	// Truncate one bucket mid-record.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	victim := filepath.Join(dir, entries[0].Name())
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(victim, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// Default read aborts on the damage; -salvage completes.
	if _, err := run(baseConfig(dir)); err == nil {
		t.Fatal("damaged bucket should fail a strict run")
	}
	cfg := baseConfig(dir)
	cfg.salvage = true
	runOK(t, cfg)
	// Clobber another bucket's header entirely: indexing can't read it,
	// so a salvage run must skip the cell rather than abort the
	// directory.
	victim2 := filepath.Join(dir, entries[1].Name())
	if err := os.WriteFile(victim2, []byte("GARBAGE!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := run(cfg); err != nil {
		t.Fatalf("salvage run should skip the unindexable cell: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	dir := writeTestData(t)
	cfg := baseConfig(dir)
	cfg.mem = "bogus"
	if _, err := run(cfg); err == nil {
		t.Fatal("bad mem should error")
	}
	cfg = baseConfig(dir)
	cfg.strategy = "zigzag"
	if _, err := run(cfg); err == nil {
		t.Fatal("bad strategy should error")
	}
	cfg = baseConfig(dir)
	cfg.merge = "eager"
	if _, err := run(cfg); err == nil {
		t.Fatal("bad merge mode should error")
	}
	cfg = baseConfig(dir)
	cfg.memBudget = "bogus"
	if _, err := run(cfg); err == nil {
		t.Fatal("bad mem-budget should error")
	}
	if _, err := run(baseConfig(t.TempDir())); err == nil {
		t.Fatal("empty data dir should error")
	}
}

// TestRunGovernedHappyPath arms every governor bound generously: the
// run must complete exactly like an ungoverned one, with no degraded
// report.
func TestRunGovernedHappyPath(t *testing.T) {
	dir := writeTestData(t)
	cfg := baseConfig(dir)
	cfg.deadline = time.Minute
	cfg.progressTimeout = 10 * time.Second
	cfg.memBudget = "1MB"
	cfg.allowDegraded = true
	runOK(t, cfg)
}

// TestRunMemoryBudgetConstrains squeezes the runtime budget far below
// the planned working set; the run must still complete (smaller chunks,
// not dropped data).
func TestRunMemoryBudgetConstrains(t *testing.T) {
	dir := writeTestData(t)
	cfg := baseConfig(dir)
	// dim-4 points cost 4*8+48 = 80 bytes in the governor's model; 4KB
	// holds ~50 points, well under the optimizer's chunk size.
	cfg.memBudget = "4KB"
	runOK(t, cfg)
}

func TestRunDegradedOnDeadline(t *testing.T) {
	dir := writeTestData(t)
	cfg := baseConfig(dir)
	cfg.deadline = time.Nanosecond
	cfg.allowDegraded = true
	degraded, err := run(cfg)
	if err != nil {
		t.Fatalf("degraded run must not error: %v", err)
	}
	if degraded == nil {
		t.Fatal("an instant deadline must yield a degraded result")
	}
	if !degraded.DeadlineExceeded {
		t.Fatalf("report %+v does not blame the deadline", degraded)
	}
	// The stderr summary line main prints is the report's String; keep
	// its structured fields stable for scripts.
	for _, field := range []string{"degraded:", "deadline=true", "points_lost="} {
		if !strings.Contains(degraded.String(), field) {
			t.Fatalf("summary %q lacks %q", degraded, field)
		}
	}
	// The degraded exit status must be nonzero and distinct from the
	// hard-failure status 1.
	if exitDegraded == 0 || exitDegraded == 1 {
		t.Fatalf("exitDegraded = %d, want a distinct nonzero status", exitDegraded)
	}

	t.Run("without -allow-degraded the deadline is a hard error", func(t *testing.T) {
		loud := baseConfig(dir)
		loud.deadline = time.Nanosecond
		if _, err := run(loud); err == nil {
			t.Fatal("deadline without -allow-degraded should fail the run")
		}
	})
}

func TestRunCSVHappyPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pts.csv")
	var rows []byte
	for i := 0; i < 40; i++ {
		x := byte('0' + i%10)
		rows = append(rows, x, ',', x, '\n')
	}
	if err := os.WriteFile(path, rows, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runCSV(path, 3, 2, "8KB", 2, 2, "random", "collective", 1, sumFlags{}); err != nil {
		t.Fatal(err)
	}
	if err := runCSV(filepath.Join(t.TempDir(), "missing.csv"), 3, 2, "8KB", 2, 0, "random", "collective", 1, sumFlags{}); err == nil {
		t.Fatal("missing csv should error")
	}
}

func TestParseBytes(t *testing.T) {
	cases := map[string]int64{
		"8MB":    8 << 20,
		"512KB":  512 << 10,
		"1GB":    1 << 30,
		"100B":   100,
		"4096":   4096,
		" 2 MB ": 2 << 20,
		"2mb":    2 << 20,
	}
	for in, want := range cases {
		got, err := parseBytes(in)
		if err != nil {
			t.Errorf("parseBytes(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("parseBytes(%q) = %d, want %d", in, got, want)
		}
	}
	for _, bad := range []string{"", "MB", "x8MB", "8.5MB"} {
		if _, err := parseBytes(bad); err == nil {
			t.Errorf("parseBytes(%q) should error", bad)
		}
	}
}

// TestRunWritesReport runs -report (with the -progress ticker armed)
// and asserts the emitted document parses, carries the literal schema
// identifier, and contains the per-stage counters and histograms the
// observability layer promises. The schema string is asserted verbatim
// on purpose: changing it breaks downstream consumers, so the test must
// not track the constant.
func TestRunWritesReport(t *testing.T) {
	dir := writeTestData(t)
	cfg := baseConfig(dir)
	cfg.report = filepath.Join(t.TempDir(), "report.json")
	cfg.progress = true
	runOK(t, cfg)
	b, err := os.ReadFile(cfg.report)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Schema  string `json:"schema"`
		Cells   int    `json:"cells"`
		Chunks  int    `json:"chunks"`
		Metrics struct {
			Counters []struct {
				Name  string `json:"name"`
				Stage string `json:"stage"`
				Value int64  `json:"value"`
			} `json:"counters"`
			Histograms []struct {
				Name  string `json:"name"`
				Stage string `json:"stage"`
				Count int64  `json:"count"`
			} `json:"histograms"`
		} `json:"metrics"`
		Trace []struct {
			Op    string `json:"op"`
			Spans int    `json:"spans"`
		} `json:"trace"`
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Schema != "streamkm.run-report/v1" {
		t.Fatalf("schema = %q, want streamkm.run-report/v1", rep.Schema)
	}
	if rep.Cells != 2 || rep.Chunks == 0 {
		t.Fatalf("cells/chunks = %d/%d, want 2 cells and nonzero chunks", rep.Cells, rep.Chunks)
	}
	counter := func(name, stage string) int64 {
		for _, c := range rep.Metrics.Counters {
			if c.Name == name && c.Stage == stage {
				return c.Value
			}
		}
		return -1
	}
	if got := counter("engine_cells_merged", ""); got != 2 {
		t.Errorf("engine_cells_merged = %d, want 2", got)
	}
	if got := counter("stream_items_in", "partial-kmeans"); got != int64(rep.Chunks) {
		t.Errorf("stream_items_in{partial-kmeans} = %d, want %d", got, rep.Chunks)
	}
	var latency bool
	for _, h := range rep.Metrics.Histograms {
		if h.Name == "stage_seconds" && h.Stage == "partial-kmeans" && h.Count > 0 {
			latency = true
		}
	}
	if !latency {
		t.Error("no populated stage_seconds histogram for partial-kmeans")
	}
	var traced bool
	for _, op := range rep.Trace {
		if op.Op == "partial-kmeans" && op.Spans == rep.Chunks {
			traced = true
		}
	}
	if !traced {
		t.Errorf("trace section %+v lacks partial-kmeans with %d spans", rep.Trace, rep.Chunks)
	}
}

func TestProgressLine(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter(obs.EngineChunksTotal, "").Add(8)
	reg.Counter(obs.EngineChunksDone, "").Add(2)
	reg.Counter(obs.EngineCellsTotal, "").Add(2)
	line := progressLine(reg, 2*time.Second)
	for _, want := range []string{"chunks 2/8", "cells 0/2", "eta 6s"} {
		if !strings.Contains(line, want) {
			t.Errorf("progress line %q missing %q", line, want)
		}
	}
	reg.Counter(obs.EngineDegradedChunks, "").Add(1)
	if line := progressLine(reg, time.Second); !strings.Contains(line, "degraded 1") {
		t.Errorf("progress line %q missing degraded count", line)
	}
	// Completed runs drop the ETA.
	reg.Counter(obs.EngineChunksDone, "").Add(6)
	if line := progressLine(reg, time.Second); strings.Contains(line, "eta") {
		t.Errorf("finished run still shows an ETA: %q", line)
	}
}
