package streamkm

import (
	"time"

	"streamkm/internal/core"
	"streamkm/internal/obs"
)

// WindowedClusterer clusters the W most recent memory-budget chunks of
// an unbounded stream, answering "what does the stream look like now"
// snapshots at any time — the continuous-query regime of the paper's
// related work (§2.2), built from the same partial/merge operators.
//
// Snapshots are served from an incremental merge index: the merged
// answer over the live window is maintained eagerly as chunks rotate,
// so a query against an unchanged window returns a cached result in
// O(k·d) with no k-means work. With MergeSolver "minibatch" the index
// additionally warm-starts each maintenance step from the previous
// answer and refines with mini-batch Lloyd instead of re-merging from
// scratch (a periodic full merge every ResyncEvery rotations bounds
// drift). Answers are a pure function of the stream position — the
// same pushes yield the same snapshot regardless of how often
// intermediate snapshots were taken.
type WindowedClusterer struct {
	inner *core.WindowedClusterer
	opts  WindowedOptions

	reg         *obs.Registry
	snapSeconds *obs.Histogram
	// absorbed tracks the core stats already folded into the registry's
	// counters, so Report can be called repeatedly and mid-stream.
	absorbed core.SnapshotStats
}

// WindowedOptions configures a windowed clusterer.
type WindowedOptions struct {
	// K is the cluster count (per chunk and per snapshot).
	K int
	// ChunkPoints is the per-chunk memory budget; must be >= K.
	ChunkPoints int
	// WindowChunks is how many recent chunks a snapshot covers.
	WindowChunks int
	// Restarts is the seed sets per chunk reduction (0 = 1).
	Restarts int
	// Epsilon, MaxIterations, Accelerate tune the inner k-means.
	Epsilon       float64
	MaxIterations int
	Accelerate    bool
	// Seed makes the stream reproducible.
	Seed uint64
	// MergeSolver selects the merge/maintenance kernel: "lloyd"
	// (default) or "minibatch", which unlocks warm-started incremental
	// refinement of the snapshot index (see WindowedClusterer).
	MergeSolver string
	// ResyncEvery is how many chunk rotations the mini-batch snapshot
	// index goes between full-merge resyncs (0 = a default policy;
	// ignored under the "lloyd" solver, which always fully merges).
	ResyncEvery int
}

// NewWindowedClusterer returns a windowed clusterer for dim-dimensional
// points.
func NewWindowedClusterer(dim int, opts WindowedOptions) (*WindowedClusterer, error) {
	w := &WindowedClusterer{opts: opts}
	inner, err := core.NewWindowedClusterer(dim, w.coreConfig())
	if err != nil {
		return nil, err
	}
	reg := obs.NewRegistry()
	w.inner = inner
	w.reg = reg
	w.snapSeconds = reg.Histogram(obs.SnapshotSeconds, "snapshot", obs.LatencyBuckets())
	return w, nil
}

// coreConfig maps the facade options onto the core configuration; the
// checkpoint restore path uses it to rebuild the inner clusterer with
// exactly the shape the options describe.
func (w *WindowedClusterer) coreConfig() core.WindowConfig {
	return core.WindowConfig{
		K:             w.opts.K,
		ChunkPoints:   w.opts.ChunkPoints,
		WindowChunks:  w.opts.WindowChunks,
		Restarts:      w.opts.Restarts,
		Epsilon:       w.opts.Epsilon,
		MaxIterations: w.opts.MaxIterations,
		Accelerate:    w.opts.Accelerate,
		Seed:          w.opts.Seed,
		MergeSolver:   w.opts.MergeSolver,
		ResyncEvery:   w.opts.ResyncEvery,
	}
}

// Push consumes one point (the slice is copied).
func (w *WindowedClusterer) Push(point []float64) error { return w.inner.Push(point) }

// Consumed returns the total points pushed; Expired the chunks that fell
// out of the window; LiveChunks the summaries currently covered.
func (w *WindowedClusterer) Consumed() int   { return w.inner.Consumed() }
func (w *WindowedClusterer) Expired() int    { return w.inner.Expired() }
func (w *WindowedClusterer) LiveChunks() int { return w.inner.LiveChunks() }

// SnapshotStats reports the snapshot index's lifetime work counters.
func (w *WindowedClusterer) SnapshotStats() core.SnapshotStats { return w.inner.SnapshotStats() }

// Snapshot merges the live window into the current clustering without
// disturbing the stream; it can be called repeatedly, and repeated
// calls against an unchanged window are answered from the index's
// cache.
func (w *WindowedClusterer) Snapshot() (*Result, error) {
	start := time.Now()
	mr, err := w.inner.Snapshot()
	w.snapSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		return nil, err
	}
	out := &Result{
		Weights:    mr.Weights,
		MergeMSE:   mr.MSE,
		Partitions: w.inner.LiveChunks(),
		MergeTime:  mr.Elapsed,
		Elapsed:    mr.Elapsed,
	}
	out.Centroids = make([][]float64, len(mr.Centroids))
	for i, c := range mr.Centroids {
		out.Centroids[i] = c
	}
	return out, nil
}

// Report renders the clusterer's query-path metrics as the same
// schema-stable JSON document engine runs emit: the snapshot_* counter
// family (queries, cache hits, warm starts, resyncs, refine
// iterations) plus the per-query latency histogram, all under the
// "snapshot" stage label.
func (w *WindowedClusterer) Report() *obs.Report {
	s := w.inner.SnapshotStats()
	w.reg.Counter(obs.SnapshotQueries, "snapshot").Add(s.Queries - w.absorbed.Queries)
	w.reg.Counter(obs.SnapshotCacheHits, "snapshot").Add(s.CacheHits - w.absorbed.CacheHits)
	w.reg.Counter(obs.SnapshotWarmStarts, "snapshot").Add(s.WarmStarts - w.absorbed.WarmStarts)
	w.reg.Counter(obs.SnapshotResyncs, "snapshot").Add(s.Resyncs - w.absorbed.Resyncs)
	w.reg.Counter(obs.SnapshotRefineIter, "snapshot").Add(s.RefineIterations - w.absorbed.RefineIterations)
	w.absorbed = s
	snap := w.reg.Snapshot()
	snap.Sort()
	return &obs.Report{Schema: obs.ReportSchema, Metrics: snap}
}
