package streamkm

import (
	"streamkm/internal/core"
)

// WindowedClusterer clusters the W most recent memory-budget chunks of
// an unbounded stream, answering "what does the stream look like now"
// snapshots at any time — the continuous-query regime of the paper's
// related work (§2.2), built from the same partial/merge operators.
type WindowedClusterer struct {
	inner *core.WindowedClusterer
}

// WindowedOptions configures a windowed clusterer.
type WindowedOptions struct {
	// K is the cluster count (per chunk and per snapshot).
	K int
	// ChunkPoints is the per-chunk memory budget; must be >= K.
	ChunkPoints int
	// WindowChunks is how many recent chunks a snapshot covers.
	WindowChunks int
	// Restarts is the seed sets per chunk reduction (0 = 1).
	Restarts int
	// Epsilon, MaxIterations, Accelerate tune the inner k-means.
	Epsilon       float64
	MaxIterations int
	Accelerate    bool
	// Seed makes the stream reproducible.
	Seed uint64
}

// NewWindowedClusterer returns a windowed clusterer for dim-dimensional
// points.
func NewWindowedClusterer(dim int, opts WindowedOptions) (*WindowedClusterer, error) {
	inner, err := core.NewWindowedClusterer(dim, core.WindowConfig{
		K:             opts.K,
		ChunkPoints:   opts.ChunkPoints,
		WindowChunks:  opts.WindowChunks,
		Restarts:      opts.Restarts,
		Epsilon:       opts.Epsilon,
		MaxIterations: opts.MaxIterations,
		Accelerate:    opts.Accelerate,
		Seed:          opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &WindowedClusterer{inner: inner}, nil
}

// Push consumes one point (the slice is copied).
func (w *WindowedClusterer) Push(point []float64) error { return w.inner.Push(point) }

// Consumed returns the total points pushed; Expired the chunks that fell
// out of the window; LiveChunks the summaries currently covered.
func (w *WindowedClusterer) Consumed() int   { return w.inner.Consumed() }
func (w *WindowedClusterer) Expired() int    { return w.inner.Expired() }
func (w *WindowedClusterer) LiveChunks() int { return w.inner.LiveChunks() }

// Snapshot merges the live window into the current clustering without
// disturbing the stream; it can be called repeatedly.
func (w *WindowedClusterer) Snapshot() (*Result, error) {
	mr, err := w.inner.Snapshot()
	if err != nil {
		return nil, err
	}
	out := &Result{
		Weights:    mr.Weights,
		MergeMSE:   mr.MSE,
		Partitions: w.inner.LiveChunks(),
		MergeTime:  mr.Elapsed,
		Elapsed:    mr.Elapsed,
	}
	out.Centroids = make([][]float64, len(mr.Centroids))
	for i, c := range mr.Centroids {
		out.Centroids[i] = c
	}
	return out, nil
}
