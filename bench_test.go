// Benchmarks regenerating the paper's exhibits as testing.B targets, one
// per table/figure (DESIGN.md's per-experiment index maps exhibits to
// these). The full-resolution sweep lives in cmd/benchtables; these
// benches run the same code paths at bench-friendly sizes and report
// clustering quality through b.ReportMetric so `go test -bench` output
// carries both time and MSE columns.
package streamkm_test

import (
	"context"
	"sync"
	"testing"

	"streamkm/internal/baseline"
	"streamkm/internal/core"
	"streamkm/internal/dataset"
	"streamkm/internal/kmeans"
)

const (
	benchK        = 40 // the paper's k
	benchRestarts = 3  // scaled from the paper's 10 to keep benches quick
)

var (
	cellCache   = map[int]*dataset.Set{}
	cellCacheMu sync.Mutex
)

// benchCell returns a cached N-point 6-D cell with the paper's workload
// characteristics.
func benchCell(b *testing.B, n int) *dataset.Set {
	b.Helper()
	cellCacheMu.Lock()
	defer cellCacheMu.Unlock()
	if s, ok := cellCache[n]; ok {
		return s
	}
	spec := dataset.DefaultCellSpec()
	s, err := dataset.GenerateCell(spec, n, uint64(n)^2004)
	if err != nil {
		b.Fatal(err)
	}
	cellCache[n] = s
	return s
}

func benchSerial(b *testing.B, n int) {
	cell := benchCell(b, n)
	var mse float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := baseline.Serial(cell, baseline.SerialConfig{
			K: benchK, Restarts: benchRestarts, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		mse = rep.MSE
	}
	b.ReportMetric(mse, "mse")
}

func benchSplit(b *testing.B, n, splits int) {
	cell := benchCell(b, n)
	var mergeMSE, pointMSE float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Cluster(cell, core.Options{
			K: benchK, Restarts: benchRestarts, Splits: splits, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		mergeMSE, pointMSE = res.MergeMSE, res.PointMSE
	}
	b.ReportMetric(mergeMSE, "mergeMSE")
	b.ReportMetric(pointMSE, "pointMSE")
}

// BenchmarkTable2 regenerates Table 2's rows: serial vs 5-split vs
// 10-split across the N sweep (sizes scaled for benchmarking; run
// cmd/benchtables -full for the paper's exact sweep).
func BenchmarkTable2(b *testing.B) {
	for _, n := range []int{2500, 12500} {
		n := n
		b.Run("serial/N="+itoa(n), func(b *testing.B) { benchSerial(b, n) })
		b.Run("5split/N="+itoa(n), func(b *testing.B) { benchSplit(b, n, 5) })
		b.Run("10split/N="+itoa(n), func(b *testing.B) { benchSplit(b, n, 10) })
	}
}

// BenchmarkFigure6 regenerates Figure 6's overall-time series: the same
// algorithms as Table 2, timed end to end across the size axis.
func BenchmarkFigure6(b *testing.B) {
	for _, n := range []int{250, 2500, 12500} {
		n := n
		b.Run("serial/N="+itoa(n), func(b *testing.B) { benchSerial(b, n) })
		if n/5 >= benchK {
			b.Run("5split/N="+itoa(n), func(b *testing.B) { benchSplit(b, n, 5) })
		}
		if n/10 >= benchK {
			b.Run("10split/N="+itoa(n), func(b *testing.B) { benchSplit(b, n, 10) })
		}
	}
}

// BenchmarkFigure7 regenerates Figure 7's quality series; MSE is the
// reported metric, time is incidental.
func BenchmarkFigure7(b *testing.B) {
	for _, n := range []int{2500, 12500} {
		n := n
		b.Run("serial/N="+itoa(n), func(b *testing.B) { benchSerial(b, n) })
		b.Run("5split/N="+itoa(n), func(b *testing.B) { benchSplit(b, n, 5) })
		b.Run("10split/N="+itoa(n), func(b *testing.B) { benchSplit(b, n, 10) })
	}
}

// BenchmarkFigure8 regenerates Figure 8: the partial stage alone,
// 5-split vs 10-split.
func BenchmarkFigure8(b *testing.B) {
	for _, n := range []int{2500, 12500} {
		for _, splits := range []int{5, 10} {
			n, splits := n, splits
			b.Run(itoa(splits)+"split/N="+itoa(n), func(b *testing.B) {
				cell := benchCell(b, n)
				var partialMS float64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := core.Cluster(cell, core.Options{
						K: benchK, Restarts: benchRestarts, Splits: splits, Seed: uint64(i),
					})
					if err != nil {
						b.Fatal(err)
					}
					partialMS = float64(res.PartialTime.Milliseconds())
				}
				b.ReportMetric(partialMS, "partial-ms")
			})
		}
	}
}

// BenchmarkSpeedup regenerates E5: cloned partial operators over a fixed
// cell. On a multi-core machine ns/op falls with clones up to the core
// count; the mergeMSE metric stays constant, proving clone-invariance.
func BenchmarkSpeedup(b *testing.B) {
	const n, splits = 12500, 10
	for _, clones := range []int{1, 2, 4, 8} {
		clones := clones
		b.Run("clones="+itoa(clones), func(b *testing.B) {
			cell := benchCell(b, n)
			var mse float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.ClusterParallel(context.Background(), cell, core.Options{
					K: benchK, Restarts: benchRestarts, Splits: splits,
					Seed: 1, Parallelism: clones,
				})
				if err != nil {
					b.Fatal(err)
				}
				mse = res.MergeMSE
			}
			b.ReportMetric(mse, "mergeMSE")
		})
	}
}

// BenchmarkMergeMode regenerates A1: collective vs incremental merging.
func BenchmarkMergeMode(b *testing.B) {
	for _, mode := range []core.MergeMode{core.MergeCollective, core.MergeIncremental} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			cell := benchCell(b, 5000)
			var mse float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Cluster(cell, core.Options{
					K: benchK, Restarts: benchRestarts, Splits: 5,
					MergeMode: mode, Seed: uint64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				mse = res.PointMSE
			}
			b.ReportMetric(mse, "pointMSE")
		})
	}
}

// BenchmarkMergeSeeding regenerates A2: heaviest-weight (the paper's
// choice) vs random vs kmeans++ merge seeding.
func BenchmarkMergeSeeding(b *testing.B) {
	for _, seeder := range []kmeans.Seeder{kmeans.HeaviestSeeder{}, kmeans.RandomSeeder{}, kmeans.PlusPlusSeeder{}} {
		seeder := seeder
		b.Run(seeder.Name(), func(b *testing.B) {
			cell := benchCell(b, 5000)
			var mse float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Cluster(cell, core.Options{
					K: benchK, Restarts: benchRestarts, Splits: 5,
					MergeSeeder: seeder, Seed: uint64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				mse = res.PointMSE
			}
			b.ReportMetric(mse, "pointMSE")
		})
	}
}

// BenchmarkSlicing regenerates A3: the slicing strategies of §6.
func BenchmarkSlicing(b *testing.B) {
	for _, strat := range []dataset.SplitStrategy{dataset.SplitRandom, dataset.SplitSalami, dataset.SplitSpatial} {
		strat := strat
		b.Run(strat.String(), func(b *testing.B) {
			cell := benchCell(b, 5000)
			var mse float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := core.Cluster(cell, core.Options{
					K: benchK, Restarts: benchRestarts, Splits: 5,
					Strategy: strat, Seed: uint64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				mse = res.PointMSE
			}
			b.ReportMetric(mse, "pointMSE")
		})
	}
}

// BenchmarkBaselines regenerates A4: every algorithm on the same cell,
// pointMSE reported for an apples-to-apples comparison.
func BenchmarkBaselines(b *testing.B) {
	const n = 5000
	b.Run("partial-merge-5split", func(b *testing.B) { benchSplit(b, n, 5) })
	b.Run("serial", func(b *testing.B) { benchSerial(b, n) })
	b.Run("birch", func(b *testing.B) {
		cell := benchCell(b, n)
		var mse float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := baseline.BIRCH(cell, baseline.BIRCHConfig{
				K: benchK, MaxLeafEntries: 8 * benchK, Seed: uint64(i),
			})
			if err != nil {
				b.Fatal(err)
			}
			mse = rep.MSE
		}
		b.ReportMetric(mse, "pointMSE")
	})
	b.Run("streamls", func(b *testing.B) {
		cell := benchCell(b, n)
		var mse float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := baseline.StreamLS(cell, baseline.StreamLSConfig{
				K: benchK, ChunkPoints: 1000, Seed: uint64(i),
			})
			if err != nil {
				b.Fatal(err)
			}
			mse = rep.MSE
		}
		b.ReportMetric(mse, "pointMSE")
	})
	b.Run("methodC", func(b *testing.B) {
		cell := benchCell(b, n)
		var mse float64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := baseline.MethodC(context.Background(), cell,
				baseline.SerialConfig{K: benchK, Seed: uint64(i)}, 4)
			if err != nil {
				b.Fatal(err)
			}
			mse = rep.MSE
		}
		b.ReportMetric(mse, "pointMSE")
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
