#!/bin/sh
# Full pre-merge check: vet, build, and the complete test suite under
# the race detector. Slower than the tier-1 verify in ROADMAP.md
# (go build ./... && go test ./...) but catches data races in the
# pipelined/supervised executors that a plain `go test` can miss.
set -eux
cd "$(dirname "$0")/.."
go vet ./...
go build ./...
go test -race ./...
