#!/bin/sh
# Full pre-merge check: forbidden-API scan, vet, build, and the
# complete test suite under the race detector. Slower than the tier-1
# verify in ROADMAP.md (go build ./... && go test ./...) but catches
# data races in the pipelined/supervised executors that a plain
# `go test` can miss.
set -eux
cd "$(dirname "$0")/.."

# The legacy executors survive only as deprecated wrappers for old
# callers; new code must compose engine.NewExec options instead
# (docs/ARCHITECTURE.md). Fail if anything outside internal/engine
# calls them.
if grep -rn --include='*.go' -E 'engine\.Execute(Supervised|Adaptive)\(' . \
    | grep -v '^\./internal/engine/'; then
  echo "error: ExecuteSupervised/ExecuteAdaptive are deprecated outside internal/engine; use engine.NewExec with options" >&2
  exit 1
fi

# ClusterECVQ survives only as a deprecated wrapper; every caller must
# select operators through the summarizer contract instead
# (Options.Summarizer = "ecvq", or core.NewSummarizer for raw specs).
if grep -rn --include='*.go' -E 'core\.ClusterECVQ\(' . \
    | grep -v '^\./internal/core/'; then
  echo "error: core.ClusterECVQ is deprecated outside internal/core; set Options.Summarizer = core.SummarizerECVQ instead" >&2
  exit 1
fi

# Formatting gate: the tree must be gofmt-clean (CI enforces the same
# gate in its tier-1 job).
UNFORMATTED="$(gofmt -l .)"
if [ -n "$UNFORMATTED" ]; then
  echo "error: gofmt needed on:" >&2
  echo "$UNFORMATTED" >&2
  exit 1
fi

go vet ./...
go build ./...
go test -race ./...

# Stall-fault soak: wedge the partial stage at several invocation
# indices (fault.StallNth) and require the governor's watchdog to
# cancel, retry, and still produce the bit-identical answer under the
# race detector. The explicit -timeout is the test's own deadline: if
# the watchdog ever fails to fire, this hangs, and the bound turns the
# hang into a failure instead of a stuck CI job.
go test -race -run 'TestGovernorStallSoak' -count=1 -timeout 120s ./internal/engine

# Fuzz smoke: a few seconds per decoder target so a regression that
# panics on malformed input fails the check without a long campaign.
# Bucket v2 is also the distributed runtime's wire format for chunk
# payloads, so these two targets guard the network boundary too.
go test -run='^$' -fuzz='^FuzzBucketReader$' -fuzztime=5s ./internal/grid
go test -run='^$' -fuzz='^FuzzSalvageBucket$' -fuzztime=5s ./internal/grid
# Checkpoint decoders (SKMC v1 stream + v2 windowed) guard the serving
# daemon's recovery path; the committed corpus pins both versions.
go test -run='^$' -fuzz='^FuzzCheckpoint$' -fuzztime=5s .

# Distributed chaos smoke: the loopback coordinator/worker suite under
# injected frame faults must stay bit-identical to the local engine.
# The explicit -timeout bounds a lost-liveness regression (a retry loop
# that never gives up) instead of wedging the check.
go test -race -run 'TestChaos' -count=1 -timeout 300s ./internal/dist

# Serving-layer chaos smoke: crash-image recovery, torn WALs, injected
# disk-full checkpoints, queue overflow, and goroutine-leak sweeps for
# the daemon, all under the race detector. The subprocess SIGKILL test
# (TestDaemon*) runs too: it builds cmd/streamkmd and kills it for real.
go test -race -run 'TestChaos|TestLeak|TestDaemon' -count=1 -timeout 300s ./internal/serve

# Benchmark smoke: one 10-iteration pass over the hot-path kernels so a
# change that panics or deadlocks only under -bench (e.g. the restart
# worker pool) fails the check without costing real benchmark time.
go test -run='^$' -bench=. -benchtime=10x ./internal/kmeans ./internal/vector

# Load-harness smoke: the tiny profile through both drivers (in-process
# engine and a spawned streamkmd), all four scenarios. Seconds, not
# minutes, and ungated — it proves the harness and both drivers work;
# the gated capacity run is CI's `load` job with the ci profile.
go run ./cmd/loadgen -profile smoke -driver both -out /tmp/load-smoke.$$.json
rm -f /tmp/load-smoke.$$.json
