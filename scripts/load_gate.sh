#!/bin/sh
# Compare a load report's gates against a committed baseline report,
# failing on direction-aware regressions. Each streamkm.load-report/v1
# document carries a flat "gates" array of {metric, value, direction}
# triples, so this comparator needs no knowledge of the report's nested
# scenario shape.
#
# A "higher" gate (throughput) regresses when the current value falls
# below baseline/THRESHOLD; a "lower" gate (latency, recovery time)
# regresses when it rises above baseline*THRESHOLD. Load numbers swing
# far more than microbenchmarks on shared runners, so the default
# threshold is 4.0x — this catches cliffs (a lost fast path, an
# accidental serial bottleneck), not percent-level drift. On top of the
# ratio, small absolute slack keyed off the metric's unit suffix stops
# microsecond-scale values from tripping the ratio on scheduler noise:
# _ms gates get 5ms of slack, _seconds gates 0.5s, _pps gates 500 pps.
#
# Usage: scripts/load_gate.sh current.json baseline.json [threshold]
set -eu

CUR="${1:?usage: load_gate.sh current.json baseline.json [threshold]}"
BASE="${2:?usage: load_gate.sh current.json baseline.json [threshold]}"
THRESHOLD="${3:-4.0}"

awk -v curfile="$CUR" -v basefile="$BASE" -v thr="$THRESHOLD" '
# parse reads the MarshalIndent layout cmd/loadgen writes: inside the
# "gates" array each triple spans three lines, "metric" first. Only
# gate objects contain a "metric" key, so keying the state machine on
# it is unambiguous.
function parse(file, vals, dirs,   line, name) {
    name = ""
    while ((getline line < file) > 0) {
        if (match(line, /"metric": "[^"]*"/)) {
            name = substr(line, RSTART + 11, RLENGTH - 12)
            order[++norder] = name
        } else if (name != "" && match(line, /"value": [0-9.eE+-]*/)) {
            vals[name] = substr(line, RSTART + 9, RLENGTH - 9) + 0
        } else if (name != "" && match(line, /"direction": "[^"]*"/)) {
            dirs[name] = substr(line, RSTART + 14, RLENGTH - 15)
            name = ""
        }
    }
    close(file)
}
function slack(name) {
    if (name ~ /_ms$/)      return 5.0
    if (name ~ /_seconds$/) return 0.5
    if (name ~ /_pps$/)     return 500.0
    return 0
}
BEGIN {
    parse(basefile, base, basedir)
    nbase = norder
    parse(curfile, current, curdir)
    status = 0
    for (i = 1; i <= nbase; i++) {
        name = order[i]
        if (!(name in current)) {
            printf "MISSING  %-32s (in baseline, absent from current report)\n", name
            status = 1
            continue
        }
        dir = basedir[name]
        b = base[name]; c = current[name]; s = slack(name)
        if (dir == "higher")
            bad = (c < b / thr - s)
        else
            bad = (c > b * thr + s)
        verdict = bad ? "REGRESS" : "ok"
        printf "%-8s %-32s baseline %14.3f   current %14.3f   (%s is worse, limit %.1fx)\n",
            verdict, name, b, c, (dir == "higher" ? "lower" : "higher"), thr
        if (bad) status = 1
    }
    if (nbase == 0) {
        print "error: no gates found in " basefile > "/dev/stderr"
        status = 1
    }
    print (status ? "load gate: FAIL" : "load gate: ok")
    exit status
}
'
