#!/bin/sh
# Compare a bench report against a baseline report, failing when any
# benchmark's current_ns_op exceeds the baseline's current_ns_op by
# more than THRESHOLD times. Noise-tolerant by design: shared CI
# runners swing 30-40% run to run, so the default 2.5x threshold
# catches order-of-magnitude regressions (an accidental quadratic loop,
# a lost fast path), not percent-level drift.
#
# Usage: scripts/bench_gate.sh current.json [baseline.json] [threshold]
#
# When the baseline is omitted or given as "latest", the newest
# committed BENCH_PR*.json (by version sort, so PR10 > PR8) is used —
# the gate always compares against the most recent accepted numbers
# instead of whichever file was hardcoded last.
set -eu

CUR="${1:?usage: bench_gate.sh current.json [baseline.json] [threshold]}"
BASE="${2:-latest}"
THRESHOLD="${3:-2.5}"

if [ "$BASE" = "latest" ]; then
    BASE=$(ls "$(dirname "$0")/.."/BENCH_PR*.json 2>/dev/null | sort -V | tail -n 1)
    if [ -z "$BASE" ]; then
        echo "error: no committed BENCH_PR*.json baseline found" >&2
        exit 1
    fi
    echo "bench gate: baseline $(basename "$BASE") (latest committed)"
fi

awk -v curfile="$CUR" -v basefile="$BASE" -v thr="$THRESHOLD" '
function parse(file, into,   line, name) {
    while ((getline line < file) > 0) {
        if (match(line, /"name": "[^"]*"/)) {
            name = substr(line, RSTART + 9, RLENGTH - 10)
            order[++norder] = name
            if (match(line, /"current_ns_op": [0-9.eE+-]*/))
                into[name] = substr(line, RSTART + 17, RLENGTH - 17) + 0
        }
    }
    close(file)
}
BEGIN {
    parse(basefile, base)
    nbase = norder
    parse(curfile, current)
    status = 0
    for (i = 1; i <= nbase; i++) {
        name = order[i]
        if (!(name in current)) {
            printf "MISSING  %-26s (in baseline, absent from current report)\n", name
            status = 1
            continue
        }
        ratio = current[name] / base[name]
        verdict = (ratio > thr) ? "REGRESS" : "ok"
        printf "%-8s %-26s baseline %14.3f ns/op   current %14.3f ns/op   ratio %5.2fx (limit %.1fx)\n",
            verdict, name, base[name], current[name], ratio, thr
        if (ratio > thr) status = 1
    }
    if (nbase == 0) {
        print "error: no benchmarks found in " basefile > "/dev/stderr"
        status = 1
    }
    print (status ? "bench gate: FAIL" : "bench gate: ok")
    exit status
}
'
