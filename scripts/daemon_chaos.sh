#!/bin/sh
# Daemon chaos smoke: exercise the real streamkmd binary through a
# SIGKILL crash/recovery cycle and save its /metrics output for
# inspection. The in-process chaos suite (internal/serve/chaos_test.go)
# covers the fault matrix; this script is the operational drill — the
# exact commands an operator would run — kept as a CI artifact.
#
# Usage: scripts/daemon_chaos.sh [metrics-out.txt]
set -eux
cd "$(dirname "$0")/.."

OUT="${1:-daemon-chaos-metrics.txt}"
STATE="$(mktemp -d)"
BIN="$(mktemp -d)/streamkmd"
trap 'kill $PID 2>/dev/null || true; rm -rf "$STATE" "$(dirname "$BIN")"' EXIT

go build -o "$BIN" ./cmd/streamkmd

start_daemon() {
  "$BIN" -listen 127.0.0.1:0 -state "$STATE" >"$STATE/stdout" 2>"$STATE/stderr" &
  PID=$!
  # The first stdout line announces the bound address.
  for _ in $(seq 1 100); do
    ADDR="$(awk '/listening on/ {print $4; exit}' "$STATE/stdout" 2>/dev/null || true)"
    [ -n "$ADDR" ] && return 0
    kill -0 "$PID" || { cat "$STATE/stderr" >&2; exit 1; }
    sleep 0.1
  done
  echo "daemon never announced its address" >&2
  exit 1
}

start_daemon
curl -sSf -X POST "http://$ADDR/v1/sessions" -d '{
  "id": "drill", "kind": "windowed", "dim": 2, "k": 3,
  "chunk_points": 50, "window_chunks": 3, "seed": 7, "fsync_every": 1}' >/dev/null

# Ingest a few durable batches, then record the answer.
i=0
while [ $i -lt 6 ]; do
  curl -sSf -X POST "http://$ADDR/v1/sessions/drill/points" \
    -d "{\"points\": [[$i.1, 0.2], [$i.9, 4.1], [0.2, $i.1], [4.0, $i.8]]}" >/dev/null
  i=$((i + 1))
done
BEFORE="$(curl -sSf "http://$ADDR/v1/sessions/drill/clusters")"

# The crash: no drain, no flush, no goodbye.
kill -9 "$PID"
wait "$PID" 2>/dev/null || true

# Recovery must reproduce the answer byte-for-byte (every point was
# fsynced before its ack).
start_daemon
AFTER="$(curl -sSf "http://$ADDR/v1/sessions/drill/clusters")"
if [ "$BEFORE" != "$AFTER" ]; then
  echo "FAIL: recovered answer differs from pre-crash answer" >&2
  echo "before: $BEFORE" >&2
  echo "after:  $AFTER" >&2
  exit 1
fi

curl -sSf "http://$ADDR/healthz"
curl -sSf "http://$ADDR/metrics" >"$OUT"

# Graceful exit: SIGTERM must drain and exit 0.
kill "$PID"
wait "$PID"
echo "daemon chaos drill passed; metrics in $OUT"
