#!/bin/sh
# Benchmark the flat-memory hot path and record the results next to the
# pre-optimization baselines in BENCH_PR3.json.
#
# The baselines below were measured on the pre-flat-storage tree (row
# slices per point, per-sweep goroutine spawning, no scratch reuse) with
# the same harness: Intel Xeon @ 2.70GHz, go test -bench -benchtime=10x.
# Each current number is the best of -count=N runs because the shared
# benchmark machines swing 30-40% run to run; best-of is the stablest
# estimator of the achievable time.
#
# Usage: scripts/bench.sh [count]     (default count: 3)
set -eu
cd "$(dirname "$0")/.."

COUNT="${1:-3}"
OUT="BENCH_PR3.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "running benchmarks (-benchtime=10x -count=$COUNT) ..." >&2
go test -run='^$' -bench='LloydNaiveK40|LloydHamerlyK40|LloydParallel4Workers' \
  -benchtime=10x -count="$COUNT" -benchmem ./internal/kmeans | tee -a "$RAW" >&2
go test -run='^$' -bench='SquaredDistance6D|NearestIndex40Centroids' \
  -count="$COUNT" ./internal/vector | tee -a "$RAW" >&2

# Reduce each benchmark to its best (minimum) ns/op across runs, then
# join with the hardcoded baselines into a JSON report.
awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    ns = $3 + 0
    if (!(name in best) || ns < best[name]) best[name] = ns
}
END {
    base["LloydNaiveK40"]          = 54418216
    base["LloydHamerlyK40"]        = 21010214
    base["LloydParallel4Workers"]  = 56082121
    base["SquaredDistance6D"]      = 5.207
    base["NearestIndex40Centroids"] = 311.0
    balloc["LloydNaiveK40"]         = 86
    balloc["LloydHamerlyK40"]       = 91
    balloc["LloydParallel4Workers"] = 10252

    n = split("LloydNaiveK40 LloydHamerlyK40 LloydParallel4Workers SquaredDistance6D NearestIndex40Centroids", order, " ")
    printf "{\n"
    printf "  \"note\": \"baseline_ns_op measured pre-PR3 (row-slice storage, per-sweep goroutines); current_ns_op is best-of-count on the same machine\",\n"
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) {
        name = order[i]
        if (!(name in best)) { missing = missing " " name; continue }
        printf "    {\"name\": \"%s\", \"baseline_ns_op\": %s, \"current_ns_op\": %s, \"speedup\": %.2f",
            name, base[name], best[name], base[name] / best[name]
        if (name in balloc) printf ", \"baseline_allocs_op\": %d", balloc[name]
        printf "}%s\n", (i < n ? "," : "")
    }
    printf "  ]\n}\n"
    if (missing != "") {
        printf "error: benchmarks missing from output:%s\n", missing > "/dev/stderr"
        exit 1
    }
}
' "$RAW" > "$OUT"

echo "wrote $OUT" >&2
cat "$OUT"
