#!/bin/sh
# Benchmark the hot-path kernels and record the results as JSON.
#
# Baselines come from the most recent previous BENCH_*.json in the repo
# root: each PR's current_ns_op becomes the next PR's baseline_ns_op,
# so the chain of committed reports tracks per-PR deltas without
# hardcoded constants. Override the choice with BENCH_BASELINE=path.
#
# Each current number is the best (minimum) of -count=N runs because
# shared benchmark machines swing 30-40% run to run; best-of is the
# stablest estimator of the achievable time.
#
# Benchmarks absent from the baseline report (newly added kernels) are
# self-baselined at their current time, reported with speedup 1.00 and
# "new": true, so the chain picks them up without manual edits.
#
# Usage: scripts/bench.sh [count] [out.json]
#   count    runs per benchmark (default 3)
#   out.json output report path (default BENCH_PR8.json)
set -eu
cd "$(dirname "$0")/.."

COUNT="${1:-3}"
OUT="${2:-BENCH_PR8.json}"

# Pick the baseline report: the newest committed BENCH_*.json that is
# not the output file itself (version sort, so PR10 follows PR9).
BASE="${BENCH_BASELINE:-}"
if [ -z "$BASE" ]; then
  BASE="$(ls BENCH_*.json 2>/dev/null | grep -vx "$OUT" | sort -V | tail -n 1 || true)"
fi
if [ -z "$BASE" ] || [ ! -f "$BASE" ]; then
  echo "error: no baseline BENCH_*.json found (set BENCH_BASELINE=path)" >&2
  exit 1
fi
echo "baselines from $BASE" >&2

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "running benchmarks (-benchtime=10x -count=$COUNT) ..." >&2
go test -run='^$' -bench='LloydNaiveK40|LloydHamerlyK40|LloydParallel4Workers|SeedScalableK40' \
  -benchtime=10x -count="$COUNT" -benchmem ./internal/kmeans | tee -a "$RAW" >&2
go test -run='^$' -bench='CoresetTree5000to200|SnapshotCold|SnapshotWarm|MergeMiniBatch' \
  -benchtime=10x -count="$COUNT" -benchmem ./internal/core | tee -a "$RAW" >&2
go test -run='^$' -bench='SquaredDistance6D|NearestIndex40Centroids' \
  -count="$COUNT" ./internal/vector | tee -a "$RAW" >&2

# Reduce each benchmark to its best (minimum) ns/op across runs, then
# join with the baseline report: its current_ns_op is our baseline.
awk -v basefile="$BASE" '
BEGIN {
    # Each benchmark entry in a BENCH_*.json report is one line:
    #   {"name": "X", ..., "current_ns_op": N, ...}
    while ((getline line < basefile) > 0) {
        if (match(line, /"name": "[^"]*"/)) {
            name = substr(line, RSTART + 9, RLENGTH - 10)
            if (match(line, /"current_ns_op": [0-9.eE+-]*/))
                base[name] = substr(line, RSTART + 17, RLENGTH - 17) + 0
        }
    }
    close(basefile)
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    sub(/^Benchmark/, "", name)
    ns = $3 + 0
    if (!(name in best) || ns < best[name]) best[name] = ns
}
END {
    n = split("LloydNaiveK40 LloydHamerlyK40 LloydParallel4Workers SeedScalableK40 CoresetTree5000to200 SnapshotCold SnapshotWarm MergeMiniBatch SquaredDistance6D NearestIndex40Centroids", order, " ")
    printf "{\n"
    printf "  \"note\": \"baseline_ns_op from the previous BENCH report; current_ns_op is best-of-count on this machine; new benchmarks self-baseline\",\n"
    printf "  \"benchmarks\": [\n"
    for (i = 1; i <= n; i++) {
        name = order[i]
        if (!(name in best)) { missing = missing " " name; continue }
        if (!(name in base)) {
            # A kernel added this PR has no prior report to compare
            # against: self-baseline so the next PR inherits a number.
            printf "    {\"name\": \"%s\", \"baseline_ns_op\": %s, \"current_ns_op\": %s, \"speedup\": 1.00, \"new\": true}%s\n",
                name, best[name], best[name], (i < n ? "," : "")
            continue
        }
        printf "    {\"name\": \"%s\", \"baseline_ns_op\": %s, \"current_ns_op\": %s, \"speedup\": %.2f}%s\n",
            name, base[name], best[name], base[name] / best[name], (i < n ? "," : "")
    }
    printf "  ]\n}\n"
    if (missing != "") {
        printf "error: benchmarks missing:%s\n", missing > "/dev/stderr"
        exit 1
    }
}
' "$RAW" > "$OUT"

echo "wrote $OUT (baseline: $BASE)" >&2
cat "$OUT"
